#include "ir/parse.hh"

#include <fstream>
#include <sstream>

#include "ir/verify.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace ct::ir {

namespace {

/** Line-oriented parsing state with error reporting. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : input_(text) {}

    ParseResult
    run()
    {
        std::string line;
        while (!failed_ && std::getline(input_, line)) {
            ++lineNo_;
            line = trim(stripComment(line));
            if (line.empty())
                continue;
            dispatch(line);
        }
        if (!failed_ && proc_ != nullptr)
            fail("unterminated 'proc' block (missing '}')");
        if (!failed_) {
            auto report = verifyModule(result_.module);
            if (!report.ok())
                fail("module failed verification:\n" + report.toString());
        }
        result_.ok = !failed_;
        return std::move(result_);
    }

  private:
    static std::string
    stripComment(const std::string &line)
    {
        size_t pos = line.find(';');
        return pos == std::string::npos ? line : line.substr(0, pos);
    }

    void
    fail(const std::string &message)
    {
        if (failed_)
            return;
        failed_ = true;
        result_.error = "line " + std::to_string(lineNo_) + ": " + message;
    }

    void
    dispatch(const std::string &line)
    {
        if (startsWith(line, "module ")) {
            if (proc_ != nullptr || result_.module.procedureCount() > 0) {
                fail("'module' must be the first declaration");
                return;
            }
            result_.module = Module(trim(line.substr(7)));
            return;
        }
        if (startsWith(line, "proc ")) {
            beginProc(line);
            return;
        }
        if (line == "}") {
            endProc();
            return;
        }
        if (startsWith(line, "bb")) {
            beginBlock(line);
            return;
        }
        parseInstOrTerminator(line);
    }

    void
    beginProc(const std::string &line)
    {
        if (proc_ != nullptr) {
            fail("nested 'proc'");
            return;
        }
        std::string rest = trim(line.substr(5));
        if (!endsWith(rest, "{")) {
            fail("expected '{' at end of proc header");
            return;
        }
        std::string name = trim(rest.substr(0, rest.size() - 1));
        if (name.empty()) {
            fail("proc needs a name");
            return;
        }
        if (result_.module.findProcedure(name) != kNoProc) {
            fail("duplicate procedure '" + name + "'");
            return;
        }
        ProcId id = result_.module.addProcedure(name);
        proc_ = &result_.module.procedure(id);
        block_ = kNoBlock;
    }

    void
    endProc()
    {
        if (proc_ == nullptr) {
            fail("'}' outside of a proc");
            return;
        }
        proc_ = nullptr;
        block_ = kNoBlock;
    }

    void
    beginBlock(const std::string &line)
    {
        if (proc_ == nullptr) {
            fail("block outside of a proc");
            return;
        }
        // "bb<N> (<label>):"
        size_t paren = line.find('(');
        size_t close = line.find("):");
        if (paren == std::string::npos || close == std::string::npos ||
            close < paren) {
            fail("malformed block header (expected 'bbN (label):')");
            return;
        }
        long index = 0;
        if (!parseLong(line.substr(2, paren - 2), index) ||
            index != long(proc_->blockCount())) {
            fail("block ids must be sequential starting at bb0");
            return;
        }
        std::string label = line.substr(paren + 1, close - paren - 1);
        block_ = proc_->addBlock(label);
    }

    bool
    parseReg(std::string token, Reg &out)
    {
        token = trim(token);
        if (token.size() < 2 || token[0] != 'r')
            return false;
        long value = 0;
        if (!parseLong(token.substr(1), value) || value < 0 ||
            value >= long(kNumRegs)) {
            return false;
        }
        out = Reg(value);
        return true;
    }

    bool
    parseImm(std::string token, Word &out)
    {
        long value = 0;
        if (!parseLong(trim(token), value))
            return false;
        out = Word(value);
        return true;
    }

    /** "off(rN)" memory operand. */
    bool
    parseMem(std::string token, Reg &base, Word &offset)
    {
        token = trim(token);
        size_t open = token.find('(');
        if (open == std::string::npos || token.back() != ')')
            return false;
        return parseImm(token.substr(0, open), offset) &&
               parseReg(token.substr(open + 1,
                                     token.size() - open - 2), base);
    }

    bool
    parseBlockRef(std::string token, BlockId &out)
    {
        token = trim(token);
        if (!startsWith(token, "bb"))
            return false;
        long value = 0;
        if (!parseLong(token.substr(2), value) || value < 0)
            return false;
        out = BlockId(value);
        return true;
    }

    bool
    parseCond(const std::string &name, CondCode &out)
    {
        for (auto cond : {CondCode::Eq, CondCode::Ne, CondCode::Lt,
                          CondCode::Ge, CondCode::Ltu, CondCode::Geu}) {
            if (name == condName(cond)) {
                out = cond;
                return true;
            }
        }
        return false;
    }

    void
    parseInstOrTerminator(const std::string &line)
    {
        if (proc_ == nullptr || block_ == kNoBlock) {
            fail("instruction outside of a block");
            return;
        }
        BasicBlock &bb = proc_->block(block_);

        size_t space = line.find(' ');
        std::string mnemonic =
            space == std::string::npos ? line : line.substr(0, space);
        std::string rest =
            space == std::string::npos ? "" : trim(line.substr(space + 1));
        auto ops = split(rest, ',');
        for (auto &op : ops)
            op = trim(op);

        auto bad = [&]() { fail("malformed '" + mnemonic + "' operands"); };

        // Terminators.
        if (mnemonic == "ret") {
            bb.term.kind = TermKind::Return;
            block_ = kNoBlock;
            return;
        }
        if (mnemonic == "jmp") {
            BlockId target;
            if (!parseBlockRef(rest, target))
                return bad();
            bb.term.kind = TermKind::Jump;
            bb.term.taken = target;
            block_ = kNoBlock;
            return;
        }
        if (startsWith(mnemonic, "br.")) {
            // br.<cond> rA, rB -> bbT else bbF
            CondCode cond;
            if (!parseCond(mnemonic.substr(3), cond))
                return bad();
            size_t arrow = rest.find("->");
            size_t els = rest.find("else");
            if (arrow == std::string::npos || els == std::string::npos)
                return bad();
            auto regs = split(trim(rest.substr(0, arrow)), ',');
            BlockId taken, fall;
            Reg lhs, rhs;
            if (regs.size() != 2 || !parseReg(regs[0], lhs) ||
                !parseReg(regs[1], rhs) ||
                !parseBlockRef(rest.substr(arrow + 2, els - arrow - 2),
                               taken) ||
                !parseBlockRef(rest.substr(els + 4), fall)) {
                return bad();
            }
            bb.term.kind = TermKind::Branch;
            bb.term.cond = cond;
            bb.term.lhs = lhs;
            bb.term.rhs = rhs;
            bb.term.taken = taken;
            bb.term.fallthrough = fall;
            block_ = kNoBlock;
            return;
        }

        // Straight-line instructions.
        Inst inst;
        if (mnemonic == "nop") {
            inst.op = Opcode::Nop;
        } else if (mnemonic == "li") {
            inst.op = Opcode::Li;
            if (ops.size() != 2 || !parseReg(ops[0], inst.rd) ||
                !parseImm(ops[1], inst.imm))
                return bad();
        } else if (mnemonic == "mov") {
            inst.op = Opcode::Mov;
            if (ops.size() != 2 || !parseReg(ops[0], inst.rd) ||
                !parseReg(ops[1], inst.rs1))
                return bad();
        } else if (mnemonic == "addi" || mnemonic == "shri") {
            inst.op = mnemonic == "addi" ? Opcode::AddI : Opcode::ShrI;
            if (ops.size() != 3 || !parseReg(ops[0], inst.rd) ||
                !parseReg(ops[1], inst.rs1) || !parseImm(ops[2], inst.imm))
                return bad();
        } else if (mnemonic == "add" || mnemonic == "sub" ||
                   mnemonic == "mul" || mnemonic == "and" ||
                   mnemonic == "or" || mnemonic == "xor" ||
                   mnemonic == "shl" || mnemonic == "shr") {
            inst.op = mnemonic == "add"   ? Opcode::Add
                      : mnemonic == "sub" ? Opcode::Sub
                      : mnemonic == "mul" ? Opcode::Mul
                      : mnemonic == "and" ? Opcode::And
                      : mnemonic == "or"  ? Opcode::Or
                      : mnemonic == "xor" ? Opcode::Xor
                      : mnemonic == "shl" ? Opcode::Shl
                                          : Opcode::Shr;
            if (ops.size() != 3 || !parseReg(ops[0], inst.rd) ||
                !parseReg(ops[1], inst.rs1) || !parseReg(ops[2], inst.rs2))
                return bad();
        } else if (mnemonic == "ld") {
            inst.op = Opcode::Ld;
            if (ops.size() != 2 || !parseReg(ops[0], inst.rd) ||
                !parseMem(ops[1], inst.rs1, inst.imm))
                return bad();
        } else if (mnemonic == "st") {
            inst.op = Opcode::St;
            if (ops.size() != 2 || !parseReg(ops[0], inst.rs2) ||
                !parseMem(ops[1], inst.rs1, inst.imm))
                return bad();
        } else if (mnemonic == "sense") {
            inst.op = Opcode::Sense;
            if (ops.size() != 2 || !parseReg(ops[0], inst.rd) ||
                !startsWith(ops[1], "ch") ||
                !parseImm(ops[1].substr(2), inst.imm))
                return bad();
        } else if (mnemonic == "radio_tx") {
            inst.op = Opcode::RadioTx;
            if (ops.size() != 1 || !parseReg(ops[0], inst.rs1))
                return bad();
        } else if (mnemonic == "radio_rx") {
            inst.op = Opcode::RadioRx;
            if (ops.size() != 1 || !parseReg(ops[0], inst.rd))
                return bad();
        } else if (mnemonic == "timer_read") {
            inst.op = Opcode::TimerRead;
            if (ops.size() != 1 || !parseReg(ops[0], inst.rd))
                return bad();
        } else if (mnemonic == "sleep") {
            inst.op = Opcode::Sleep;
            if (ops.size() != 1 || !parseImm(ops[0], inst.imm) ||
                inst.imm < 0)
                return bad();
        } else if (mnemonic == "call") {
            inst.op = Opcode::Call;
            if (ops.size() != 1 || !startsWith(ops[0], "proc#") ||
                !parseImm(ops[0].substr(5), inst.imm))
                return bad();
        } else {
            fail("unknown mnemonic '" + mnemonic + "'");
            return;
        }
        bb.insts.push_back(inst);
    }

    std::istringstream input_;
    size_t lineNo_ = 0;
    ParseResult result_;
    Procedure *proc_ = nullptr;
    BlockId block_ = kNoBlock;
    bool failed_ = false;
};

} // namespace

ParseResult
parseModule(const std::string &text)
{
    return Parser(text).run();
}

ParseResult
parseModuleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open IR file '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseModule(buffer.str());
}

} // namespace ct::ir
