#include "ir/inst.hh"

#include <sstream>

#include "util/logging.hh"

namespace ct::ir {

CondCode
negate(CondCode cond)
{
    switch (cond) {
      case CondCode::Eq: return CondCode::Ne;
      case CondCode::Ne: return CondCode::Eq;
      case CondCode::Lt: return CondCode::Ge;
      case CondCode::Ge: return CondCode::Lt;
      case CondCode::Ltu: return CondCode::Geu;
      case CondCode::Geu: return CondCode::Ltu;
    }
    panic("negate: bad CondCode ", int(cond));
}

const char *
condName(CondCode cond)
{
    switch (cond) {
      case CondCode::Eq: return "eq";
      case CondCode::Ne: return "ne";
      case CondCode::Lt: return "lt";
      case CondCode::Ge: return "ge";
      case CondCode::Ltu: return "ltu";
      case CondCode::Geu: return "geu";
    }
    panic("condName: bad CondCode ", int(cond));
}

bool
evalCond(CondCode cond, Word lhs, Word rhs)
{
    switch (cond) {
      case CondCode::Eq: return lhs == rhs;
      case CondCode::Ne: return lhs != rhs;
      case CondCode::Lt: return lhs < rhs;
      case CondCode::Ge: return lhs >= rhs;
      case CondCode::Ltu: return uint32_t(lhs) < uint32_t(rhs);
      case CondCode::Geu: return uint32_t(lhs) >= uint32_t(rhs);
    }
    panic("evalCond: bad CondCode ", int(cond));
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Li: return "li";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::AddI: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::ShrI: return "shri";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Sense: return "sense";
      case Opcode::RadioTx: return "radio_tx";
      case Opcode::RadioRx: return "radio_rx";
      case Opcode::TimerRead: return "timer_read";
      case Opcode::Sleep: return "sleep";
      case Opcode::Call: return "call";
    }
    panic("opcodeName: bad Opcode ", int(op));
}

bool
writesReg(Opcode op)
{
    switch (op) {
      case Opcode::Li:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::AddI:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::ShrI:
      case Opcode::Ld:
      case Opcode::Sense:
      case Opcode::RadioRx:
      case Opcode::TimerRead:
        return true;
      default:
        return false;
    }
}

std::string
Inst::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    auto r = [](Reg reg) { return "r" + std::to_string(int(reg)); };
    switch (op) {
      case Opcode::Nop:
        break;
      case Opcode::Li:
        os << " " << r(rd) << ", " << imm;
        break;
      case Opcode::Mov:
        os << " " << r(rd) << ", " << r(rs1);
        break;
      case Opcode::AddI:
      case Opcode::ShrI:
        os << " " << r(rd) << ", " << r(rs1) << ", " << imm;
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        os << " " << r(rd) << ", " << r(rs1) << ", " << r(rs2);
        break;
      case Opcode::Ld:
        os << " " << r(rd) << ", " << imm << "(" << r(rs1) << ")";
        break;
      case Opcode::St:
        os << " " << r(rs2) << ", " << imm << "(" << r(rs1) << ")";
        break;
      case Opcode::Sense:
        os << " " << r(rd) << ", ch" << imm;
        break;
      case Opcode::RadioTx:
        os << " " << r(rs1);
        break;
      case Opcode::RadioRx:
      case Opcode::TimerRead:
        os << " " << r(rd);
        break;
      case Opcode::Sleep:
        os << " " << imm;
        break;
      case Opcode::Call:
        os << " proc#" << imm;
        break;
    }
    return os.str();
}

} // namespace ct::ir
