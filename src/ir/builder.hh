/**
 * @file
 * Fluent construction API for procedures.
 *
 * The workload suite builds its programs through this interface; it
 * enforces that every block is terminated exactly once and that operand
 * registers are in range, so malformed CFGs are caught at build time
 * rather than during simulation.
 */

#ifndef CT_IR_BUILDER_HH
#define CT_IR_BUILDER_HH

#include <vector>

#include "ir/module.hh"

namespace ct::ir {

/** Builds one procedure inside a module. */
class ProcedureBuilder
{
  public:
    /** Start building a new procedure named @p name in @p module. */
    ProcedureBuilder(Module &module, const std::string &name);

    /** Create a new (empty, unterminated) block. */
    BlockId newBlock(const std::string &name = "");

    /** Direct subsequent instruction appends at @p id. */
    void setBlock(BlockId id);

    /** Block currently being appended to. */
    BlockId currentBlock() const { return current_; }

    /// @name Straight-line instruction appends
    /// @{
    ProcedureBuilder &nop();
    ProcedureBuilder &li(Reg rd, Word imm);
    ProcedureBuilder &mov(Reg rd, Reg rs);
    ProcedureBuilder &add(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &addi(Reg rd, Reg rs1, Word imm);
    ProcedureBuilder &sub(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &mul(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &band(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &bor(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &bxor(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &shl(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &shr(Reg rd, Reg rs1, Reg rs2);
    ProcedureBuilder &shri(Reg rd, Reg rs1, Word imm);
    ProcedureBuilder &ld(Reg rd, Reg addr, Word offset);
    ProcedureBuilder &st(Reg addr, Word offset, Reg value);
    ProcedureBuilder &sense(Reg rd, Word channel);
    ProcedureBuilder &radioTx(Reg rs);
    ProcedureBuilder &radioRx(Reg rd);
    ProcedureBuilder &timerRead(Reg rd);
    ProcedureBuilder &sleep(Word cycles);
    ProcedureBuilder &call(const std::string &callee);
    /// @}

    /// @name Terminators (each ends the current block)
    /// @{
    void br(CondCode cond, Reg lhs, Reg rhs, BlockId if_true,
            BlockId if_false);
    void jmp(BlockId target);
    void ret();
    /// @}

    /**
     * Finish: verifies every block is terminated and the CFG is
     * structurally sound; fatal() otherwise. Returns the procedure id.
     */
    ProcId finish();

  private:
    void append(Inst inst);
    void terminate(Terminator term);
    void checkReg(Reg reg) const;

    Module &module_;
    ProcId procId_;
    BlockId current_ = kNoBlock;
    std::vector<bool> terminated_;
    bool finished_ = false;
};

} // namespace ct::ir

#endif // CT_IR_BUILDER_HH
