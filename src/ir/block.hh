/**
 * @file
 * Basic blocks and terminators.
 */

#ifndef CT_IR_BLOCK_HH
#define CT_IR_BLOCK_HH

#include <string>
#include <vector>

#include "ir/inst.hh"
#include "ir/types.hh"

namespace ct::ir {

/** Control transfer that ends a basic block. */
enum class TermKind : uint8_t {
    Branch, //!< two-way conditional branch
    Jump,   //!< unconditional jump
    Return, //!< procedure exit
};

/**
 * Block terminator. For Branch, @c taken is reached when the condition
 * holds and @c fallthrough otherwise; the names describe the *logical*
 * CFG, not physical adjacency — the layout pass decides which successor
 * is physically next and may invert the condition.
 */
struct Terminator
{
    TermKind kind = TermKind::Return;
    CondCode cond = CondCode::Eq; //!< Branch only
    Reg lhs = 0;                  //!< Branch only
    Reg rhs = 0;                  //!< Branch only
    BlockId taken = kNoBlock;     //!< Branch/Jump target
    BlockId fallthrough = kNoBlock; //!< Branch only

    bool isBranch() const { return kind == TermKind::Branch; }
    bool isJump() const { return kind == TermKind::Jump; }
    bool isReturn() const { return kind == TermKind::Return; }

    std::string toString() const;
};

/** One basic block: straight-line instructions plus one terminator. */
struct BasicBlock
{
    BlockId id = kNoBlock;
    std::string name;
    std::vector<Inst> insts;
    Terminator term;

    /** Logical successor ids in (taken, fallthrough) order. */
    std::vector<BlockId> successors() const;

    /** Number of instructions including the terminator. */
    size_t size() const { return insts.size() + 1; }
};

/** Classification of a CFG edge, used for profiling and layout. */
enum class EdgeKind : uint8_t {
    BranchTaken, //!< conditional branch, condition true
    BranchFall,  //!< conditional branch, condition false
    Jump,        //!< unconditional jump
};

/** One directed CFG edge. */
struct Edge
{
    BlockId from = kNoBlock;
    BlockId to = kNoBlock;
    EdgeKind kind = EdgeKind::Jump;

    bool operator==(const Edge &other) const = default;
};

} // namespace ct::ir

#endif // CT_IR_BLOCK_HH
