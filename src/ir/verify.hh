/**
 * @file
 * Structural verification of procedures and modules.
 */

#ifndef CT_IR_VERIFY_HH
#define CT_IR_VERIFY_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace ct::ir {

/** Accumulated verification diagnostics. */
class VerifyReport
{
  public:
    void addError(std::string message);

    bool ok() const { return errors_.empty(); }
    const std::vector<std::string> &errors() const { return errors_; }

    /** All errors joined with newlines. */
    std::string toString() const;

  private:
    std::vector<std::string> errors_;
};

/**
 * Check one procedure:
 *  - all terminator targets are in range,
 *  - branch successors are distinct,
 *  - all blocks are reachable from the entry,
 *  - every register operand is < kNumRegs,
 *  - at least one exit (Return) block exists and is reachable.
 */
VerifyReport verifyProcedure(const Procedure &proc);

/**
 * Check a whole module: each procedure individually, Call targets exist,
 * and the static call graph is acyclic (the mote has a tiny stack; the
 * workload suite is recursion-free by construction).
 */
VerifyReport verifyModule(const Module &module);

} // namespace ct::ir

#endif // CT_IR_VERIFY_HH
