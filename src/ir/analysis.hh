/**
 * @file
 * Classic CFG analyses: orders, dominators, natural loops, path counts.
 *
 * The layout pass uses the DFS order as a baseline; the tomography
 * estimators use loop information to bound path enumeration; Table 1
 * reports the static path counts.
 */

#ifndef CT_IR_ANALYSIS_HH
#define CT_IR_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "ir/procedure.hh"

namespace ct::ir {

/** Depth-first preorder over reachable blocks, taken edge first. */
std::vector<BlockId> dfsPreorder(const Procedure &proc);

/** Reverse post-order over reachable blocks. */
std::vector<BlockId> reversePostOrder(const Procedure &proc);

/**
 * Immediate dominators (Cooper-Harvey-Kennedy). Index by block id; the
 * entry maps to itself; unreachable blocks map to kNoBlock.
 */
std::vector<BlockId> immediateDominators(const Procedure &proc);

/** True if @p a dominates @p b given an idom array. */
bool dominates(const std::vector<BlockId> &idom, BlockId a, BlockId b);

/** One natural loop. */
struct NaturalLoop
{
    BlockId header = kNoBlock;
    /** Back edge sources (latches) jumping to the header. */
    std::vector<BlockId> latches;
    /** All member blocks (header included), ascending. */
    std::vector<BlockId> body;

    bool contains(BlockId id) const;
};

/**
 * All natural loops (one per header; multiple back edges to one header
 * are merged into a single loop).
 */
std::vector<NaturalLoop> findNaturalLoops(const Procedure &proc);

/** All back edges (tail -> header with header dominating tail). */
std::vector<Edge> backEdges(const Procedure &proc);

/**
 * Number of distinct acyclic entry->exit paths, counting each loop body
 * as traversed at most once (back edges ignored). Saturates at
 * @p saturation to avoid overflow on branchy procedures.
 */
uint64_t countAcyclicPaths(const Procedure &proc,
                           uint64_t saturation = 1'000'000'000);

} // namespace ct::ir

#endif // CT_IR_ANALYSIS_HH
