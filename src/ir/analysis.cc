#include "ir/analysis.hh"

#include <algorithm>
#include <functional>

#include "util/logging.hh"

namespace ct::ir {

std::vector<BlockId>
dfsPreorder(const Procedure &proc)
{
    std::vector<BlockId> order;
    std::vector<bool> seen(proc.blockCount(), false);

    std::function<void(BlockId)> visit = [&](BlockId id) {
        seen[id] = true;
        order.push_back(id);
        for (BlockId succ : proc.block(id).successors()) {
            if (!seen[succ])
                visit(succ);
        }
    };
    visit(proc.entry());
    return order;
}

std::vector<BlockId>
reversePostOrder(const Procedure &proc)
{
    std::vector<BlockId> post;
    std::vector<bool> seen(proc.blockCount(), false);

    std::function<void(BlockId)> visit = [&](BlockId id) {
        seen[id] = true;
        for (BlockId succ : proc.block(id).successors()) {
            if (!seen[succ])
                visit(succ);
        }
        post.push_back(id);
    };
    visit(proc.entry());
    std::reverse(post.begin(), post.end());
    return post;
}

std::vector<BlockId>
immediateDominators(const Procedure &proc)
{
    const auto rpo = reversePostOrder(proc);
    std::vector<uint32_t> rpoIndex(proc.blockCount(), UINT32_MAX);
    for (uint32_t i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = i;

    const auto preds = proc.predecessors();
    std::vector<BlockId> idom(proc.blockCount(), kNoBlock);
    idom[proc.entry()] = proc.entry();

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId id : rpo) {
            if (id == proc.entry())
                continue;
            BlockId new_idom = kNoBlock;
            for (BlockId pred : preds[id]) {
                if (idom[pred] == kNoBlock)
                    continue; // pred not yet processed / unreachable
                new_idom = (new_idom == kNoBlock) ? pred
                                                  : intersect(pred, new_idom);
            }
            if (new_idom != kNoBlock && idom[id] != new_idom) {
                idom[id] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<BlockId> &idom, BlockId a, BlockId b)
{
    if (b >= idom.size() || idom[b] == kNoBlock)
        return false;
    BlockId walk = b;
    while (true) {
        if (walk == a)
            return true;
        BlockId up = idom[walk];
        if (up == walk)
            return walk == a;
        walk = up;
    }
}

bool
NaturalLoop::contains(BlockId id) const
{
    return std::binary_search(body.begin(), body.end(), id);
}

std::vector<Edge>
backEdges(const Procedure &proc)
{
    const auto idom = immediateDominators(proc);
    std::vector<Edge> out;
    for (const Edge &edge : proc.edges()) {
        if (dominates(idom, edge.to, edge.from))
            out.push_back(edge);
    }
    return out;
}

std::vector<NaturalLoop>
findNaturalLoops(const Procedure &proc)
{
    const auto preds = proc.predecessors();
    std::vector<NaturalLoop> loops;

    for (const Edge &edge : backEdges(proc)) {
        BlockId header = edge.to;
        auto it = std::find_if(loops.begin(), loops.end(),
                               [&](const NaturalLoop &loop) {
                                   return loop.header == header;
                               });
        if (it == loops.end()) {
            loops.push_back({});
            it = loops.end() - 1;
            it->header = header;
            it->body = {header};
        }
        it->latches.push_back(edge.from);

        // Standard natural-loop body: header plus everything that reaches
        // the latch without passing through the header.
        std::vector<bool> in_body(proc.blockCount(), false);
        for (BlockId member : it->body)
            in_body[member] = true;
        std::vector<BlockId> stack;
        if (!in_body[edge.from]) {
            in_body[edge.from] = true;
            stack.push_back(edge.from);
        }
        while (!stack.empty()) {
            BlockId id = stack.back();
            stack.pop_back();
            for (BlockId pred : preds[id]) {
                if (!in_body[pred]) {
                    in_body[pred] = true;
                    stack.push_back(pred);
                }
            }
        }
        it->body.clear();
        for (BlockId id = 0; id < proc.blockCount(); ++id) {
            if (in_body[id])
                it->body.push_back(id);
        }
    }

    std::sort(loops.begin(), loops.end(),
              [](const NaturalLoop &a, const NaturalLoop &b) {
                  return a.header < b.header;
              });
    return loops;
}

uint64_t
countAcyclicPaths(const Procedure &proc, uint64_t saturation)
{
    // Count paths over the DAG obtained by deleting back edges, in reverse
    // post-order (so successors are finished before predecessors when we
    // walk it backwards).
    const auto idom = immediateDominators(proc);
    const auto rpo = reversePostOrder(proc);

    std::vector<uint64_t> paths(proc.blockCount(), 0);
    for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
        BlockId id = *it;
        const auto &bb = proc.block(id);
        if (bb.term.isReturn()) {
            paths[id] = 1;
            continue;
        }
        uint64_t total = 0;
        for (BlockId succ : bb.successors()) {
            if (dominates(idom, succ, id))
                continue; // back edge
            total += paths[succ];
            if (total >= saturation) {
                total = saturation;
                break;
            }
        }
        paths[id] = total;
    }
    return paths[proc.entry()];
}

} // namespace ct::ir
