/**
 * @file
 * Modules: collections of procedures with name-based lookup.
 */

#ifndef CT_IR_MODULE_HH
#define CT_IR_MODULE_HH

#include <map>
#include <string>
#include <vector>

#include "ir/procedure.hh"

namespace ct::ir {

/** A whole program: procedures indexed by id, findable by name. */
class Module
{
  public:
    explicit Module(std::string name = "module");

    const std::string &name() const { return name_; }

    /** Create an empty procedure; returns its id. Names must be unique. */
    ProcId addProcedure(const std::string &proc_name);

    Procedure &procedure(ProcId id);
    const Procedure &procedure(ProcId id) const;

    /** Lookup by name; kNoProc when absent. */
    ProcId findProcedure(const std::string &proc_name) const;

    /** Lookup by name; fatal() when absent. */
    Procedure &procedureByName(const std::string &proc_name);
    const Procedure &procedureByName(const std::string &proc_name) const;

    size_t procedureCount() const { return procs_.size(); }
    const std::vector<Procedure> &procedures() const { return procs_; }
    std::vector<Procedure> &procedures() { return procs_; }

    /** Aggregate counts for Table-1-style reporting. */
    size_t totalBlocks() const;
    size_t totalInsts() const;
    size_t totalBranches() const;

  private:
    std::string name_;
    std::vector<Procedure> procs_;
    std::map<std::string, ProcId> byName_;
};

} // namespace ct::ir

#endif // CT_IR_MODULE_HH
