#include "ir/profile.hh"

#include "util/logging.hh"

namespace ct::ir {

void
EdgeProfile::addEdge(BlockId from, BlockId to, double weight)
{
    counts_[{from, to}] += weight;
}

double
EdgeProfile::edgeCount(BlockId from, BlockId to) const
{
    auto it = counts_.find({from, to});
    return it == counts_.end() ? 0.0 : it->second;
}

double
EdgeProfile::edgeFrequency(BlockId from, BlockId to) const
{
    return invocations_ > 0.0 ? edgeCount(from, to) / invocations_ : 0.0;
}

double
EdgeProfile::outflow(BlockId block) const
{
    double sum = 0.0;
    auto it = counts_.lower_bound({block, 0});
    for (; it != counts_.end() && it->first.first == block; ++it)
        sum += it->second;
    return sum;
}

double
EdgeProfile::visitCount(const Procedure &proc, BlockId block) const
{
    double inflow = block == proc.entry() ? invocations_ : 0.0;
    for (const auto &[edge, count] : counts_) {
        if (edge.second == block)
            inflow += count;
    }
    return inflow;
}

double
EdgeProfile::takenProbability(const Procedure &proc, BlockId block,
                              double fallback) const
{
    const auto &bb = proc.block(block);
    CT_ASSERT(bb.term.isBranch(), "takenProbability on non-branch block bb",
              block, " of ", proc.name());
    double taken = edgeCount(block, bb.term.taken);
    double fall = edgeCount(block, bb.term.fallthrough);
    double total = taken + fall;
    return total > 0.0 ? taken / total : fallback;
}

std::vector<double>
EdgeProfile::branchProbabilities(const Procedure &proc, double fallback) const
{
    std::vector<double> out;
    for (BlockId block : proc.branchBlocks())
        out.push_back(takenProbability(proc, block, fallback));
    return out;
}

std::vector<double>
EdgeProfile::edgeFrequencies(const Procedure &proc) const
{
    std::vector<double> out;
    for (const Edge &edge : proc.edges())
        out.push_back(edgeFrequency(edge.from, edge.to));
    return out;
}

void
EdgeProfile::scale(double s)
{
    for (auto &[edge, count] : counts_)
        count *= s;
    invocations_ *= s;
}

void
EdgeProfile::merge(const EdgeProfile &other)
{
    for (const auto &[edge, count] : other.counts_)
        counts_[edge] += count;
    invocations_ += other.invocations_;
}

EdgeProfile &
ModuleProfile::operator[](ProcId id)
{
    CT_ASSERT(id < profiles_.size(), "ModuleProfile index out of range");
    return profiles_[id];
}

const EdgeProfile &
ModuleProfile::operator[](ProcId id) const
{
    CT_ASSERT(id < profiles_.size(), "ModuleProfile index out of range");
    return profiles_[id];
}

void
ModuleProfile::merge(const ModuleProfile &other)
{
    CT_ASSERT(profiles_.size() == other.profiles_.size(),
              "ModuleProfile size mismatch in merge");
    for (size_t i = 0; i < profiles_.size(); ++i)
        profiles_[i].merge(other.profiles_[i]);
}

} // namespace ct::ir
