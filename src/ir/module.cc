#include "ir/module.hh"

#include "util/logging.hh"

namespace ct::ir {

Module::Module(std::string name)
    : name_(std::move(name))
{
}

ProcId
Module::addProcedure(const std::string &proc_name)
{
    CT_ASSERT(byName_.find(proc_name) == byName_.end(),
              "duplicate procedure name '", proc_name, "'");
    ProcId id = ProcId(procs_.size());
    procs_.emplace_back(id, proc_name);
    byName_[proc_name] = id;
    return id;
}

Procedure &
Module::procedure(ProcId id)
{
    CT_ASSERT(id < procs_.size(), "procedure id out of range");
    return procs_[id];
}

const Procedure &
Module::procedure(ProcId id) const
{
    CT_ASSERT(id < procs_.size(), "procedure id out of range");
    return procs_[id];
}

ProcId
Module::findProcedure(const std::string &proc_name) const
{
    auto it = byName_.find(proc_name);
    return it == byName_.end() ? kNoProc : it->second;
}

Procedure &
Module::procedureByName(const std::string &proc_name)
{
    ProcId id = findProcedure(proc_name);
    if (id == kNoProc)
        fatal("no procedure named '", proc_name, "' in module ", name_);
    return procs_[id];
}

const Procedure &
Module::procedureByName(const std::string &proc_name) const
{
    ProcId id = findProcedure(proc_name);
    if (id == kNoProc)
        fatal("no procedure named '", proc_name, "' in module ", name_);
    return procs_[id];
}

size_t
Module::totalBlocks() const
{
    size_t out = 0;
    for (const auto &proc : procs_)
        out += proc.blockCount();
    return out;
}

size_t
Module::totalInsts() const
{
    size_t out = 0;
    for (const auto &proc : procs_)
        out += proc.instCount() + proc.blockCount(); // + terminators
    return out;
}

size_t
Module::totalBranches() const
{
    size_t out = 0;
    for (const auto &proc : procs_)
        out += proc.branchBlocks().size();
    return out;
}

} // namespace ct::ir
