#include "ir/verify.hh"

#include <sstream>
#include <vector>

#include "util/logging.hh"

namespace ct::ir {

void
VerifyReport::addError(std::string message)
{
    errors_.push_back(std::move(message));
}

std::string
VerifyReport::toString() const
{
    std::ostringstream os;
    for (const auto &err : errors_)
        os << "  - " << err << "\n";
    return os.str();
}

namespace {

void
checkBlock(const Procedure &proc, const BasicBlock &bb, VerifyReport &report)
{
    auto err = [&](const std::string &what) {
        report.addError(proc.name() + "/bb" + std::to_string(bb.id) + ": " +
                        what);
    };

    for (const auto &inst : bb.insts) {
        if (inst.rd >= kNumRegs || inst.rs1 >= kNumRegs ||
            inst.rs2 >= kNumRegs) {
            err("register operand out of range in '" + inst.toString() + "'");
        }
    }

    switch (bb.term.kind) {
      case TermKind::Branch:
        if (bb.term.taken >= proc.blockCount())
            err("branch taken target out of range");
        if (bb.term.fallthrough >= proc.blockCount())
            err("branch fallthrough target out of range");
        if (bb.term.taken == bb.term.fallthrough)
            err("branch successors must be distinct");
        if (bb.term.lhs >= kNumRegs || bb.term.rhs >= kNumRegs)
            err("branch register operand out of range");
        break;
      case TermKind::Jump:
        if (bb.term.taken >= proc.blockCount())
            err("jump target out of range");
        break;
      case TermKind::Return:
        break;
    }
}

std::vector<bool>
reachableBlocks(const Procedure &proc)
{
    std::vector<bool> seen(proc.blockCount(), false);
    std::vector<BlockId> stack = {proc.entry()};
    seen[proc.entry()] = true;
    while (!stack.empty()) {
        BlockId id = stack.back();
        stack.pop_back();
        for (BlockId succ : proc.block(id).successors()) {
            if (succ < proc.blockCount() && !seen[succ]) {
                seen[succ] = true;
                stack.push_back(succ);
            }
        }
    }
    return seen;
}

} // namespace

VerifyReport
verifyProcedure(const Procedure &proc)
{
    VerifyReport report;
    if (proc.blockCount() == 0) {
        report.addError(proc.name() + ": procedure has no blocks");
        return report;
    }

    for (const auto &bb : proc.blocks())
        checkBlock(proc, bb, report);

    auto seen = reachableBlocks(proc);
    for (BlockId id = 0; id < proc.blockCount(); ++id) {
        if (!seen[id])
            report.addError(proc.name() + "/bb" + std::to_string(id) +
                            ": unreachable from entry");
    }

    bool has_reachable_exit = false;
    for (BlockId id : proc.exitBlocks())
        has_reachable_exit |= seen[id];
    if (!has_reachable_exit)
        report.addError(proc.name() + ": no reachable Return block");

    return report;
}

namespace {

/** DFS cycle check over the static call graph. */
bool
callGraphHasCycle(const Module &module, ProcId node, std::vector<int> &state)
{
    state[node] = 1; // in progress
    for (ProcId callee : module.procedure(node).callees()) {
        if (callee >= module.procedureCount())
            continue; // reported separately
        if (state[callee] == 1)
            return true;
        if (state[callee] == 0 && callGraphHasCycle(module, callee, state))
            return true;
    }
    state[node] = 2; // done
    return false;
}

} // namespace

VerifyReport
verifyModule(const Module &module)
{
    VerifyReport report;
    for (const auto &proc : module.procedures()) {
        auto sub = verifyProcedure(proc);
        for (const auto &err : sub.errors())
            report.addError(err);
        for (ProcId callee : proc.callees()) {
            if (callee >= module.procedureCount())
                report.addError(proc.name() + ": call to unknown procedure #" +
                                std::to_string(callee));
        }
    }

    std::vector<int> state(module.procedureCount(), 0);
    for (ProcId id = 0; id < module.procedureCount(); ++id) {
        if (state[id] == 0 && callGraphHasCycle(module, id, state)) {
            report.addError("module " + module.name() +
                            ": recursive call graph (unsupported on motes)");
            break;
        }
    }
    return report;
}

} // namespace ct::ir
