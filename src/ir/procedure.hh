/**
 * @file
 * Procedures: CFGs of basic blocks with query helpers.
 */

#ifndef CT_IR_PROCEDURE_HH
#define CT_IR_PROCEDURE_HH

#include <string>
#include <vector>

#include "ir/block.hh"

namespace ct::ir {

/**
 * A procedure is a list of basic blocks; block 0 is the entry. Blocks are
 * stored in "natural" (authoring) order, which also serves as the unlaid-
 * out baseline placement.
 */
class Procedure
{
  public:
    Procedure(ProcId id, std::string name);

    ProcId id() const { return id_; }
    const std::string &name() const { return name_; }

    /** Append a block; returns its id. */
    BlockId addBlock(std::string name);

    BasicBlock &block(BlockId id);
    const BasicBlock &block(BlockId id) const;

    size_t blockCount() const { return blocks_.size(); }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    std::vector<BasicBlock> &blocks() { return blocks_; }

    BlockId entry() const { return 0; }

    /** All CFG edges, in block order then (taken, fallthrough). */
    std::vector<Edge> edges() const;

    /** Ids of blocks whose terminator is a conditional branch. */
    std::vector<BlockId> branchBlocks() const;

    /** Ids of blocks whose terminator is Return. */
    std::vector<BlockId> exitBlocks() const;

    /** Predecessor lists indexed by block id. */
    std::vector<std::vector<BlockId>> predecessors() const;

    /** Total straight-line instruction count (terminators excluded). */
    size_t instCount() const;

    /** Ids of procedures invoked via Call instructions (with repeats). */
    std::vector<ProcId> callees() const;

  private:
    ProcId id_;
    std::string name_;
    std::vector<BasicBlock> blocks_;
};

} // namespace ct::ir

#endif // CT_IR_PROCEDURE_HH
