#include "ir/dump.hh"

#include <sstream>

namespace ct::ir {

std::string
dumpProcedure(const Procedure &proc)
{
    std::ostringstream os;
    os << "proc " << proc.name() << " {\n";
    for (const auto &bb : proc.blocks()) {
        os << "  bb" << bb.id << " (" << bb.name << "):\n";
        for (const auto &inst : bb.insts)
            os << "    " << inst.toString() << "\n";
        os << "    " << bb.term.toString() << "\n";
    }
    os << "}\n";
    return os.str();
}

std::string
dumpModule(const Module &module)
{
    std::ostringstream os;
    os << "module " << module.name() << "\n";
    for (const auto &proc : module.procedures())
        os << dumpProcedure(proc);
    return os.str();
}

} // namespace ct::ir
