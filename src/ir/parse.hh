/**
 * @file
 * Textual IR parser: the inverse of dump.hh.
 *
 * Accepts the exact format dumpModule() emits, so modules round-trip
 * through text. This lets workloads live in files, experiments ship
 * reproducible inputs, and tests fuzz the printer/parser pair.
 *
 * Grammar (per line, ';' starts a comment):
 *
 *   module <name>
 *   proc <name> {
 *     bb<N> (<label>):
 *       <mnemonic> <operands...>
 *       br.<cond> r<A>, r<B> -> bb<T> else bb<F>
 *       jmp bb<T>
 *       ret
 *   }
 */

#ifndef CT_IR_PARSE_HH
#define CT_IR_PARSE_HH

#include <string>

#include "ir/module.hh"

namespace ct::ir {

/** Result of a parse attempt. */
struct ParseResult
{
    Module module;
    bool ok = false;
    std::string error; //!< "line N: message" when !ok
};

/** Parse module text. */
ParseResult parseModule(const std::string &text);

/** Parse a module from a file; fatal() if the file cannot be read. */
ParseResult parseModuleFile(const std::string &path);

} // namespace ct::ir

#endif // CT_IR_PARSE_HH
