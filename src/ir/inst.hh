/**
 * @file
 * Non-terminator instructions of the mote ISA.
 *
 * The opcode set mirrors what TinyOS-class application code compiles to on
 * an MSP430/AVR mote: integer ALU ops, loads/stores to a small RAM, device
 * operations (sensor ADC read, radio TX/RX, timer capture, low-power
 * sleep), and procedure calls. Control flow lives in Terminator, not here.
 */

#ifndef CT_IR_INST_HH
#define CT_IR_INST_HH

#include <string>

#include "ir/types.hh"

namespace ct::ir {

/** Opcodes for straight-line instructions. */
enum class Opcode : uint8_t {
    Nop,
    Li,      //!< rd = imm
    Mov,     //!< rd = rs1
    Add,     //!< rd = rs1 + rs2
    AddI,    //!< rd = rs1 + imm
    Sub,     //!< rd = rs1 - rs2
    Mul,     //!< rd = rs1 * rs2 (multi-cycle on motes)
    And,     //!< rd = rs1 & rs2
    Or,      //!< rd = rs1 | rs2
    Xor,     //!< rd = rs1 ^ rs2
    Shl,     //!< rd = rs1 << (rs2 & 31)
    Shr,     //!< rd = unsigned(rs1) >> (rs2 & 31)
    ShrI,    //!< rd = unsigned(rs1) >> (imm & 31)
    Ld,      //!< rd = ram[rs1 + imm]
    St,      //!< ram[rs1 + imm] = rs2
    Sense,   //!< rd = next sample of sensor channel imm (ADC read)
    RadioTx, //!< transmit rs1 (fixed per-packet cost)
    RadioRx, //!< rd = next inbound byte/packet token
    TimerRead, //!< rd = current timer ticks (used by probes)
    Sleep,   //!< idle for imm cycles (low-power wait)
    Call,    //!< invoke procedure #imm, then continue
};

/** Printable mnemonic. */
const char *opcodeName(Opcode op);

/** True for opcodes that write a destination register. */
bool writesReg(Opcode op);

/**
 * One straight-line instruction. Fields that an opcode does not use are
 * ignored (and zeroed by the builder).
 */
struct Inst
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;
    Reg rs1 = 0;
    Reg rs2 = 0;
    Word imm = 0;

    /** "add r1, r2, r3"-style rendering. */
    std::string toString() const;
};

} // namespace ct::ir

#endif // CT_IR_INST_HH
