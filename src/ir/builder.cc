#include "ir/builder.hh"

#include "ir/verify.hh"
#include "util/logging.hh"

namespace ct::ir {

ProcedureBuilder::ProcedureBuilder(Module &module, const std::string &name)
    : module_(module), procId_(module.addProcedure(name))
{
    // Every procedure has an entry block from the start.
    newBlock("entry");
    setBlock(0);
}

BlockId
ProcedureBuilder::newBlock(const std::string &name)
{
    CT_ASSERT(!finished_, "builder already finished");
    BlockId id = module_.procedure(procId_).addBlock(name);
    terminated_.push_back(false);
    return id;
}

void
ProcedureBuilder::setBlock(BlockId id)
{
    CT_ASSERT(!finished_, "builder already finished");
    CT_ASSERT(id < terminated_.size(), "setBlock: unknown block");
    CT_ASSERT(!terminated_[id], "setBlock: block already terminated");
    current_ = id;
}

void
ProcedureBuilder::checkReg(Reg reg) const
{
    CT_ASSERT(reg < kNumRegs, "register r", int(reg), " out of range");
}

void
ProcedureBuilder::append(Inst inst)
{
    CT_ASSERT(!finished_, "builder already finished");
    CT_ASSERT(current_ != kNoBlock, "no current block");
    CT_ASSERT(!terminated_[current_], "appending to terminated block");
    module_.procedure(procId_).block(current_).insts.push_back(inst);
}

void
ProcedureBuilder::terminate(Terminator term)
{
    CT_ASSERT(!finished_, "builder already finished");
    CT_ASSERT(current_ != kNoBlock, "no current block");
    CT_ASSERT(!terminated_[current_], "block terminated twice");
    module_.procedure(procId_).block(current_).term = term;
    terminated_[current_] = true;
    current_ = kNoBlock;
}

ProcedureBuilder &
ProcedureBuilder::nop()
{
    append({Opcode::Nop, 0, 0, 0, 0});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::li(Reg rd, Word imm)
{
    checkReg(rd);
    append({Opcode::Li, rd, 0, 0, imm});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::mov(Reg rd, Reg rs)
{
    checkReg(rd);
    checkReg(rs);
    append({Opcode::Mov, rd, rs, 0, 0});
    return *this;
}

#define CT_BUILDER_ALU3(method, opcode)                                       \
    ProcedureBuilder &ProcedureBuilder::method(Reg rd, Reg rs1, Reg rs2)      \
    {                                                                         \
        checkReg(rd);                                                         \
        checkReg(rs1);                                                        \
        checkReg(rs2);                                                        \
        append({Opcode::opcode, rd, rs1, rs2, 0});                            \
        return *this;                                                         \
    }

CT_BUILDER_ALU3(add, Add)
CT_BUILDER_ALU3(sub, Sub)
CT_BUILDER_ALU3(mul, Mul)
CT_BUILDER_ALU3(band, And)
CT_BUILDER_ALU3(bor, Or)
CT_BUILDER_ALU3(bxor, Xor)
CT_BUILDER_ALU3(shl, Shl)
CT_BUILDER_ALU3(shr, Shr)

#undef CT_BUILDER_ALU3

ProcedureBuilder &
ProcedureBuilder::addi(Reg rd, Reg rs1, Word imm)
{
    checkReg(rd);
    checkReg(rs1);
    append({Opcode::AddI, rd, rs1, 0, imm});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::shri(Reg rd, Reg rs1, Word imm)
{
    checkReg(rd);
    checkReg(rs1);
    append({Opcode::ShrI, rd, rs1, 0, imm});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::ld(Reg rd, Reg addr, Word offset)
{
    checkReg(rd);
    checkReg(addr);
    append({Opcode::Ld, rd, addr, 0, offset});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::st(Reg addr, Word offset, Reg value)
{
    checkReg(addr);
    checkReg(value);
    append({Opcode::St, 0, addr, value, offset});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::sense(Reg rd, Word channel)
{
    checkReg(rd);
    append({Opcode::Sense, rd, 0, 0, channel});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::radioTx(Reg rs)
{
    checkReg(rs);
    append({Opcode::RadioTx, 0, rs, 0, 0});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::radioRx(Reg rd)
{
    checkReg(rd);
    append({Opcode::RadioRx, rd, 0, 0, 0});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::timerRead(Reg rd)
{
    checkReg(rd);
    append({Opcode::TimerRead, rd, 0, 0, 0});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::sleep(Word cycles)
{
    CT_ASSERT(cycles >= 0, "sleep cycles must be >= 0");
    append({Opcode::Sleep, 0, 0, 0, cycles});
    return *this;
}

ProcedureBuilder &
ProcedureBuilder::call(const std::string &callee)
{
    ProcId target = module_.findProcedure(callee);
    if (target == kNoProc)
        fatal("call to unknown procedure '", callee,
              "' (define callees before callers)");
    append({Opcode::Call, 0, 0, 0, Word(target)});
    return *this;
}

void
ProcedureBuilder::br(CondCode cond, Reg lhs, Reg rhs, BlockId if_true,
                     BlockId if_false)
{
    checkReg(lhs);
    checkReg(rhs);
    CT_ASSERT(if_true < terminated_.size(), "br: unknown taken target");
    CT_ASSERT(if_false < terminated_.size(), "br: unknown fallthrough target");
    CT_ASSERT(if_true != if_false,
              "br: both successors identical; use jmp instead");
    Terminator term;
    term.kind = TermKind::Branch;
    term.cond = cond;
    term.lhs = lhs;
    term.rhs = rhs;
    term.taken = if_true;
    term.fallthrough = if_false;
    terminate(term);
}

void
ProcedureBuilder::jmp(BlockId target)
{
    CT_ASSERT(target < terminated_.size(), "jmp: unknown target");
    Terminator term;
    term.kind = TermKind::Jump;
    term.taken = target;
    terminate(term);
}

void
ProcedureBuilder::ret()
{
    Terminator term;
    term.kind = TermKind::Return;
    terminate(term);
}

ProcId
ProcedureBuilder::finish()
{
    CT_ASSERT(!finished_, "builder finished twice");
    for (size_t i = 0; i < terminated_.size(); ++i) {
        if (!terminated_[i])
            fatal("procedure '", module_.procedure(procId_).name(),
                  "': block bb", i, " was never terminated");
    }
    finished_ = true;
    auto report = verifyProcedure(module_.procedure(procId_));
    if (!report.ok())
        fatal("procedure '", module_.procedure(procId_).name(),
              "' failed verification:\n", report.toString());
    return procId_;
}

} // namespace ct::ir
