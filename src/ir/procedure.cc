#include "ir/procedure.hh"

#include <sstream>

#include "util/logging.hh"

namespace ct::ir {

std::string
Terminator::toString() const
{
    std::ostringstream os;
    switch (kind) {
      case TermKind::Branch:
        os << "br." << condName(cond) << " r" << int(lhs) << ", r"
           << int(rhs) << " -> bb" << taken << " else bb" << fallthrough;
        break;
      case TermKind::Jump:
        os << "jmp bb" << taken;
        break;
      case TermKind::Return:
        os << "ret";
        break;
    }
    return os.str();
}

std::vector<BlockId>
BasicBlock::successors() const
{
    switch (term.kind) {
      case TermKind::Branch:
        return {term.taken, term.fallthrough};
      case TermKind::Jump:
        return {term.taken};
      case TermKind::Return:
        return {};
    }
    panic("BasicBlock::successors: bad TermKind");
}

Procedure::Procedure(ProcId id, std::string name)
    : id_(id), name_(std::move(name))
{
}

BlockId
Procedure::addBlock(std::string name)
{
    BlockId id = BlockId(blocks_.size());
    BasicBlock bb;
    bb.id = id;
    bb.name = name.empty() ? ("bb" + std::to_string(id)) : std::move(name);
    blocks_.push_back(std::move(bb));
    return id;
}

BasicBlock &
Procedure::block(BlockId id)
{
    CT_ASSERT(id < blocks_.size(), "block id out of range in ", name_);
    return blocks_[id];
}

const BasicBlock &
Procedure::block(BlockId id) const
{
    CT_ASSERT(id < blocks_.size(), "block id out of range in ", name_);
    return blocks_[id];
}

std::vector<Edge>
Procedure::edges() const
{
    std::vector<Edge> out;
    for (const auto &bb : blocks_) {
        switch (bb.term.kind) {
          case TermKind::Branch:
            out.push_back({bb.id, bb.term.taken, EdgeKind::BranchTaken});
            out.push_back({bb.id, bb.term.fallthrough, EdgeKind::BranchFall});
            break;
          case TermKind::Jump:
            out.push_back({bb.id, bb.term.taken, EdgeKind::Jump});
            break;
          case TermKind::Return:
            break;
        }
    }
    return out;
}

std::vector<BlockId>
Procedure::branchBlocks() const
{
    std::vector<BlockId> out;
    for (const auto &bb : blocks_) {
        if (bb.term.isBranch())
            out.push_back(bb.id);
    }
    return out;
}

std::vector<BlockId>
Procedure::exitBlocks() const
{
    std::vector<BlockId> out;
    for (const auto &bb : blocks_) {
        if (bb.term.isReturn())
            out.push_back(bb.id);
    }
    return out;
}

std::vector<std::vector<BlockId>>
Procedure::predecessors() const
{
    std::vector<std::vector<BlockId>> preds(blocks_.size());
    for (const auto &bb : blocks_) {
        for (BlockId succ : bb.successors()) {
            if (succ < blocks_.size())
                preds[succ].push_back(bb.id);
        }
    }
    return preds;
}

size_t
Procedure::instCount() const
{
    size_t out = 0;
    for (const auto &bb : blocks_)
        out += bb.insts.size();
    return out;
}

std::vector<ProcId>
Procedure::callees() const
{
    std::vector<ProcId> out;
    for (const auto &bb : blocks_) {
        for (const auto &inst : bb.insts) {
            if (inst.op == Opcode::Call)
                out.push_back(ProcId(inst.imm));
        }
    }
    return out;
}

} // namespace ct::ir
