/**
 * @file
 * Trace degradation transforms for the robustness experiments (E4).
 *
 * Real mote timers are coarse and jittery; these transforms degrade a
 * clean trace so estimator robustness can be swept without re-running
 * the simulator.
 */

#ifndef CT_TRACE_TRANSFORMS_HH
#define CT_TRACE_TRANSFORMS_HH

#include "stats/rng.hh"
#include "trace/timing_trace.hh"

namespace ct::trace {

/**
 * Add zero-mean Gaussian jitter (std @p sigma_ticks, in ticks) to each
 * timestamp independently, rounding to integer ticks. Models interrupt
 * latency and capture skew.
 */
TimingTrace addGaussianJitter(const TimingTrace &input, double sigma_ticks,
                              Rng &rng);

/**
 * Re-quantize a trace to a coarser timer: timestamps are divided by
 * @p factor (integer floor). Models sweeping the timer prescaler.
 */
TimingTrace coarsen(const TimingTrace &input, int64_t factor);

/**
 * Drop each record independently with probability @p p (lossy delivery
 * of measurement reports over the radio).
 */
TimingTrace dropRecords(const TimingTrace &input, double p, Rng &rng);

} // namespace ct::trace

#endif // CT_TRACE_TRANSFORMS_HH
