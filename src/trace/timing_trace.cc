#include "trace/timing_trace.hh"

#include <fstream>

#include "util/logging.hh"
#include "util/str.hh"

namespace ct::trace {

void
TimingTrace::add(TimingRecord record)
{
    records_.push_back(record);
}

const TimingRecord &
TimingTrace::operator[](size_t i) const
{
    CT_ASSERT(i < records_.size(), "trace index out of range");
    return records_[i];
}

size_t
TimingTrace::countFor(ir::ProcId proc) const
{
    size_t n = 0;
    for (const auto &record : records_)
        n += record.proc == proc;
    return n;
}

std::vector<int64_t>
TimingTrace::durations(ir::ProcId proc) const
{
    std::vector<int64_t> out;
    for (const auto &record : records_) {
        if (record.proc == proc)
            out.push_back(record.durationTicks());
    }
    return out;
}

std::vector<uint64_t>
TimingTrace::trueDurations(ir::ProcId proc) const
{
    std::vector<uint64_t> out;
    for (const auto &record : records_) {
        if (record.proc == proc)
            out.push_back(record.trueCycles);
    }
    return out;
}

TimingTrace
TimingTrace::truncated(ir::ProcId proc, size_t n) const
{
    TimingTrace out;
    size_t kept = 0;
    for (const auto &record : records_) {
        if (record.proc == proc) {
            if (kept >= n)
                continue;
            ++kept;
        }
        out.add(record);
    }
    return out;
}

TimingTrace
TimingTrace::truncatedAll(size_t n) const
{
    TimingTrace out;
    std::vector<size_t> kept; // per-proc counts, grown on demand
    for (const auto &record : records_) {
        if (record.proc != ir::kNoProc) {
            if (size_t(record.proc) >= kept.size())
                kept.resize(size_t(record.proc) + 1, 0);
            if (kept[size_t(record.proc)] >= n)
                continue;
            ++kept[size_t(record.proc)];
        }
        out.add(record);
    }
    return out;
}

void
TimingTrace::saveCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << "proc,invocation,start_tick,end_tick,true_cycles\n";
    for (const auto &r : records_) {
        out << r.proc << ',' << r.invocation << ',' << r.startTick << ','
            << r.endTick << ',' << r.trueCycles << '\n';
    }
}

TimingTrace
TimingTrace::loadCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "' for reading");
    TimingTrace out;
    std::string line;
    bool first = true;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (first) {
            first = false; // header
            continue;
        }
        if (trim(line).empty())
            continue;
        auto fields = split(line, ',');
        if (fields.size() != 5)
            fatal(path, ":", lineno, ": expected 5 fields, got ",
                  fields.size());
        long proc, invocation, start, end, cycles;
        if (!parseLong(fields[0], proc) || !parseLong(fields[1], invocation) ||
            !parseLong(fields[2], start) || !parseLong(fields[3], end) ||
            !parseLong(fields[4], cycles)) {
            fatal(path, ":", lineno, ": malformed numeric field");
        }
        TimingRecord record;
        record.proc = ir::ProcId(proc);
        record.invocation = uint64_t(invocation);
        record.startTick = start;
        record.endTick = end;
        record.trueCycles = uint64_t(cycles);
        out.add(record);
    }
    return out;
}

} // namespace ct::trace
