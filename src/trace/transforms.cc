#include "trace/transforms.hh"

#include <cmath>

#include "util/logging.hh"

namespace ct::trace {

TimingTrace
addGaussianJitter(const TimingTrace &input, double sigma_ticks, Rng &rng)
{
    CT_ASSERT(sigma_ticks >= 0.0, "jitter sigma must be >= 0");
    TimingTrace out;
    for (const auto &record : input.records()) {
        TimingRecord noisy = record;
        noisy.startTick += int64_t(std::llround(rng.gaussian(0, sigma_ticks)));
        noisy.endTick += int64_t(std::llround(rng.gaussian(0, sigma_ticks)));
        if (noisy.endTick < noisy.startTick)
            noisy.endTick = noisy.startTick;
        out.add(noisy);
    }
    return out;
}

TimingTrace
coarsen(const TimingTrace &input, int64_t factor)
{
    CT_ASSERT(factor >= 1, "coarsen factor must be >= 1");
    TimingTrace out;
    for (const auto &record : input.records()) {
        TimingRecord coarse = record;
        auto floorDiv = [factor](int64_t v) {
            return v >= 0 ? v / factor : -((-v + factor - 1) / factor);
        };
        coarse.startTick = floorDiv(record.startTick);
        coarse.endTick = floorDiv(record.endTick);
        out.add(coarse);
    }
    return out;
}

TimingTrace
dropRecords(const TimingTrace &input, double p, Rng &rng)
{
    CT_ASSERT(p >= 0.0 && p <= 1.0, "drop probability out of range");
    TimingTrace out;
    for (const auto &record : input.records()) {
        if (!rng.bernoulli(p))
            out.add(record);
    }
    return out;
}

} // namespace ct::trace
