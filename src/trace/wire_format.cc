#include "trace/wire_format.hh"

#include "util/logging.hh"

namespace ct::trace {

void
appendVarint(std::vector<uint8_t> &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(uint8_t(value) | 0x80);
        value >>= 7;
    }
    out.push_back(uint8_t(value));
}

VarintDecode
readVarintChecked(const std::vector<uint8_t> &in, size_t &cursor,
                  uint64_t &value)
{
    value = 0;
    for (int i = 0;; ++i) {
        if (cursor >= in.size())
            return VarintDecode::Truncated;
        uint8_t byte = in[cursor++];
        if (i == 9) {
            // Tenth byte: bits 63.. — only the lowest bit fits in a
            // uint64, and it must terminate the varint. Anything else
            // (set high bits, or an 11th byte) cannot be completed by
            // more input, so it is Overflow, never Truncated.
            if (byte > 1)
                return VarintDecode::Overflow;
            value |= uint64_t(byte) << 63;
            return VarintDecode::Ok;
        }
        value |= uint64_t(byte & 0x7f) << (7 * i);
        if (!(byte & 0x80))
            return VarintDecode::Ok;
    }
}

bool
readVarint(const std::vector<uint8_t> &in, size_t &cursor, uint64_t &value)
{
    return readVarintChecked(in, cursor, value) == VarintDecode::Ok;
}

uint64_t
zigzagEncode(int64_t value)
{
    return (uint64_t(value) << 1) ^ uint64_t(value >> 63);
}

int64_t
zigzagDecode(uint64_t value)
{
    return int64_t(value >> 1) ^ -int64_t(value & 1);
}

void
appendRecord(std::vector<uint8_t> &out, const TimingRecord &record,
             int64_t &prev_end)
{
    appendVarint(out, record.proc);
    appendVarint(out, zigzagEncode(record.startTick - prev_end));
    int64_t duration = record.durationTicks();
    CT_ASSERT(duration >= 0, "wire format: negative duration");
    appendVarint(out, uint64_t(duration));
    prev_end = record.endTick;
}

RecordDecode
decodeRecord(const std::vector<uint8_t> &bytes, size_t &cursor,
             int64_t &prev_end, TimingRecord &out)
{
    size_t start = cursor;
    uint64_t proc = 0, gap = 0, duration = 0;
    for (uint64_t *field : {&proc, &gap, &duration}) {
        switch (readVarintChecked(bytes, cursor, *field)) {
          case VarintDecode::Ok:
            break;
          case VarintDecode::Truncated:
            // A valid prefix of a longer stream: retry with more bytes.
            cursor = start;
            return RecordDecode::NeedMore;
          case VarintDecode::Overflow:
            return RecordDecode::Malformed;
        }
    }
    if (proc > kMaxWireProc || duration > kMaxWireTicks)
        return RecordDecode::Malformed;
    int64_t signed_gap = zigzagDecode(gap);
    if (signed_gap > int64_t(kMaxWireTicks) ||
        signed_gap < -int64_t(kMaxWireTicks)) {
        return RecordDecode::Malformed;
    }
    int64_t start_tick = 0, end_tick = 0;
    if (__builtin_add_overflow(prev_end, signed_gap, &start_tick) ||
        __builtin_add_overflow(start_tick, int64_t(duration), &end_tick)) {
        return RecordDecode::Malformed;
    }
    out = TimingRecord{};
    out.proc = ir::ProcId(proc);
    out.startTick = start_tick;
    out.endTick = end_tick;
    out.invocation = 0;
    out.trueCycles = 0; // the oracle never crosses the air
    prev_end = end_tick;
    return RecordDecode::Ok;
}

std::vector<uint8_t>
encodeTrace(const TimingTrace &trace)
{
    std::vector<uint8_t> out;
    int64_t prev_end = 0;
    for (const auto &record : trace.records())
        appendRecord(out, record, prev_end);
    return out;
}

bool
decodeTrace(const std::vector<uint8_t> &bytes, TimingTrace &out)
{
    out = TimingTrace{};
    size_t cursor = 0;
    int64_t prev_end = 0;
    std::vector<uint64_t> invocation_counters;

    while (cursor < bytes.size()) {
        TimingRecord record;
        if (decodeRecord(bytes, cursor, prev_end, record) !=
            RecordDecode::Ok) {
            out = TimingTrace{};
            return false;
        }
        if (invocation_counters.size() <= record.proc)
            invocation_counters.resize(record.proc + 1, 0);
        record.invocation = invocation_counters[record.proc]++;
        out.add(record);
    }
    return true;
}

double
bytesPerRecord(const TimingTrace &trace)
{
    if (trace.empty())
        return 0.0;
    return double(encodeTrace(trace).size()) / double(trace.size());
}

} // namespace ct::trace
