#include "trace/wire_format.hh"

#include "util/logging.hh"

namespace ct::trace {

void
appendVarint(std::vector<uint8_t> &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(uint8_t(value) | 0x80);
        value >>= 7;
    }
    out.push_back(uint8_t(value));
}

bool
readVarint(const std::vector<uint8_t> &in, size_t &cursor, uint64_t &value)
{
    value = 0;
    int shift = 0;
    while (cursor < in.size()) {
        uint8_t byte = in[cursor++];
        if (shift >= 64)
            return false; // overlong
        value |= uint64_t(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
    }
    return false; // truncated
}

uint64_t
zigzagEncode(int64_t value)
{
    return (uint64_t(value) << 1) ^ uint64_t(value >> 63);
}

int64_t
zigzagDecode(uint64_t value)
{
    return int64_t(value >> 1) ^ -int64_t(value & 1);
}

std::vector<uint8_t>
encodeTrace(const TimingTrace &trace)
{
    std::vector<uint8_t> out;
    int64_t prev_end = 0;
    for (const auto &record : trace.records()) {
        appendVarint(out, record.proc);
        appendVarint(out, zigzagEncode(record.startTick - prev_end));
        int64_t duration = record.durationTicks();
        CT_ASSERT(duration >= 0, "wire format: negative duration");
        appendVarint(out, uint64_t(duration));
        prev_end = record.endTick;
    }
    return out;
}

bool
decodeTrace(const std::vector<uint8_t> &bytes, TimingTrace &out)
{
    out = TimingTrace{};
    size_t cursor = 0;
    int64_t prev_end = 0;
    std::vector<uint64_t> invocation_counters;

    while (cursor < bytes.size()) {
        uint64_t proc = 0, gap = 0, duration = 0;
        if (!readVarint(bytes, cursor, proc) ||
            !readVarint(bytes, cursor, gap) ||
            !readVarint(bytes, cursor, duration)) {
            out = TimingTrace{};
            return false;
        }
        TimingRecord record;
        record.proc = ir::ProcId(proc);
        record.startTick = prev_end + zigzagDecode(gap);
        record.endTick = record.startTick + int64_t(duration);
        if (invocation_counters.size() <= proc)
            invocation_counters.resize(proc + 1, 0);
        record.invocation = invocation_counters[proc]++;
        record.trueCycles = 0; // the oracle never crosses the air
        prev_end = record.endTick;
        out.add(record);
    }
    return true;
}

double
bytesPerRecord(const TimingTrace &trace)
{
    if (trace.empty())
        return 0.0;
    return double(encodeTrace(trace).size()) / double(trace.size());
}

} // namespace ct::trace
