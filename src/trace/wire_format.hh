/**
 * @file
 * On-air wire format for timing reports.
 *
 * A mote ships its boundary timestamps to the sink over the radio, so
 * the bytes per record are part of Code Tomography's cost story (E7).
 * The format is LEB128 varints with delta encoding: procedure ids are
 * small, consecutive records are near each other in time, and
 * durations are short — so records compress to a few bytes each.
 *
 * Layout per record:
 *   varint proc_id
 *   varint zigzag(start_tick - prev_end_tick)   (gap since last record)
 *   varint duration_ticks
 *
 * The oracle field (trueCycles) is evaluation-only and never leaves
 * the simulator; decoding yields records with trueCycles == 0.
 */

#ifndef CT_TRACE_WIRE_FORMAT_HH
#define CT_TRACE_WIRE_FORMAT_HH

#include <cstdint>
#include <vector>

#include "trace/timing_trace.hh"

namespace ct::trace {

/// @name Varint primitives (exposed for tests)
/// @{
void appendVarint(std::vector<uint8_t> &out, uint64_t value);

/**
 * Why one byte of LEB128 needs three outcomes: a stream that ends
 * mid-varint is a valid *prefix* (more radio bytes may complete it),
 * but a varint that cannot fit 64 bits is garbage no suffix can fix.
 * Property-based fuzzing (tests/prop_wire_format.cc) shrank two
 * counterexamples against the old boolean decoder:
 *
 *   [0x80 x9, 0x02]  — ten-byte varint whose final byte carries bits
 *                      above bit 63: the old decoder shifted them out
 *                      and silently decoded 0 instead of rejecting;
 *   [0x80 x10]       — eleven continuation bytes ending the buffer:
 *                      the old decoder reported "truncated", so a
 *                      streaming collector would wait forever for
 *                      bytes that cannot rescue the stream.
 */
enum class VarintDecode {
    Ok,        //!< value decoded; cursor advanced past it
    Truncated, //!< buffer ended mid-varint (a valid prefix)
    Overflow,  //!< needs > 64 bits / overlong past 10 bytes: malformed
};

/** Decode one varint at @p cursor; cursor advances past consumed bytes
 *  on Ok and is unspecified otherwise. */
VarintDecode readVarintChecked(const std::vector<uint8_t> &in,
                               size_t &cursor, uint64_t &value);

/** Boolean convenience wrapper (Ok == true); prefer the checked form
 *  anywhere Truncated and Overflow must be told apart. */
bool readVarint(const std::vector<uint8_t> &in, size_t &cursor,
                uint64_t &value);
uint64_t zigzagEncode(int64_t value);
int64_t zigzagDecode(uint64_t value);
/// @}

/// @name Hardened decode limits
/// Adversarial (or radio-corrupted) buffers are valid varint streams
/// for absurd values; these caps bound what a decoder will ever
/// materialize, so malformed input is rejected instead of causing
/// huge allocations or signed overflow.
/// @{
/** Largest procedure id a wire record may carry (bounds the
 *  per-procedure invocation-counter allocation during decode). */
constexpr uint64_t kMaxWireProc = 65'535;
/** Largest |start gap| or duration, in ticks, a record may carry. */
constexpr uint64_t kMaxWireTicks = uint64_t(1) << 40;
/// @}

/** Outcome of decoding one record from a byte stream. */
enum class RecordDecode {
    Ok,        //!< record decoded; cursor advanced past it
    NeedMore,  //!< stream ends mid-record (cursor restored) — a valid
               //!< prefix; retry once more bytes arrive
    Malformed, //!< bounds violated / overlong varint / overflow
};

/**
 * Append one record to @p out, delta-encoded against @p prev_end
 * (which is updated to the record's end tick). encodeTrace() is this
 * helper folded over a whole trace with prev_end starting at 0; the
 * packet layer (net/packet.hh) restarts prev_end per packet so each
 * payload decodes independently.
 */
void appendRecord(std::vector<uint8_t> &out, const TimingRecord &record,
                  int64_t &prev_end);

/**
 * Decode one record starting at @p cursor. On Ok, fills @p out (with
 * invocation = 0 and trueCycles = 0 — the caller assigns invocation
 * indices), advances @p cursor past the record and updates
 * @p prev_end. On NeedMore, @p cursor is restored so the caller can
 * retry with more data. On Malformed, @p cursor is unspecified.
 */
RecordDecode decodeRecord(const std::vector<uint8_t> &bytes, size_t &cursor,
                          int64_t &prev_end, TimingRecord &out);

/** Encode a trace into the wire format. */
std::vector<uint8_t> encodeTrace(const TimingTrace &trace);

/**
 * Decode a wire buffer back into a trace.
 * @retval false (and clears @p out) on malformed input.
 */
bool decodeTrace(const std::vector<uint8_t> &bytes, TimingTrace &out);

/** Average encoded bytes per record (0 for an empty trace). */
double bytesPerRecord(const TimingTrace &trace);

} // namespace ct::trace

#endif // CT_TRACE_WIRE_FORMAT_HH
