/**
 * @file
 * On-air wire format for timing reports.
 *
 * A mote ships its boundary timestamps to the sink over the radio, so
 * the bytes per record are part of Code Tomography's cost story (E7).
 * The format is LEB128 varints with delta encoding: procedure ids are
 * small, consecutive records are near each other in time, and
 * durations are short — so records compress to a few bytes each.
 *
 * Layout per record:
 *   varint proc_id
 *   varint zigzag(start_tick - prev_end_tick)   (gap since last record)
 *   varint duration_ticks
 *
 * The oracle field (trueCycles) is evaluation-only and never leaves
 * the simulator; decoding yields records with trueCycles == 0.
 */

#ifndef CT_TRACE_WIRE_FORMAT_HH
#define CT_TRACE_WIRE_FORMAT_HH

#include <cstdint>
#include <vector>

#include "trace/timing_trace.hh"

namespace ct::trace {

/// @name Varint primitives (exposed for tests)
/// @{
void appendVarint(std::vector<uint8_t> &out, uint64_t value);
/** @retval false on truncated/overlong input. */
bool readVarint(const std::vector<uint8_t> &in, size_t &cursor,
                uint64_t &value);
uint64_t zigzagEncode(int64_t value);
int64_t zigzagDecode(uint64_t value);
/// @}

/** Encode a trace into the wire format. */
std::vector<uint8_t> encodeTrace(const TimingTrace &trace);

/**
 * Decode a wire buffer back into a trace.
 * @retval false (and clears @p out) on malformed input.
 */
bool decodeTrace(const std::vector<uint8_t> &bytes, TimingTrace &out);

/** Average encoded bytes per record (0 for an empty trace). */
double bytesPerRecord(const TimingTrace &trace);

} // namespace ct::trace

#endif // CT_TRACE_WIRE_FORMAT_HH
