/**
 * @file
 * End-to-end timing traces: the only measurement Code Tomography sees.
 *
 * Each record is one procedure invocation with its start/end timestamps
 * in timer ticks. The true cycle duration is carried alongside purely
 * for evaluation (computing estimator error); no estimator reads it.
 */

#ifndef CT_TRACE_TIMING_TRACE_HH
#define CT_TRACE_TIMING_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.hh"

namespace ct::trace {

/** One procedure invocation's boundary measurement. */
struct TimingRecord
{
    ir::ProcId proc = ir::kNoProc;
    uint64_t invocation = 0; //!< per-procedure invocation index
    int64_t startTick = 0;   //!< quantized timestamp at entry
    int64_t endTick = 0;     //!< quantized timestamp at exit
    uint64_t trueCycles = 0; //!< oracle duration, for evaluation only

    /** Measured duration in ticks — what the estimator consumes. */
    int64_t durationTicks() const { return endTick - startTick; }
};

/** A sequence of timing records from one measurement campaign. */
class TimingTrace
{
  public:
    void add(TimingRecord record);

    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const TimingRecord &operator[](size_t i) const;
    const std::vector<TimingRecord> &records() const { return records_; }

    /** Number of records for @p proc. */
    size_t countFor(ir::ProcId proc) const;

    /** Measured durations (ticks) of @p proc's invocations, in order. */
    std::vector<int64_t> durations(ir::ProcId proc) const;

    /** Oracle durations (cycles) of @p proc's invocations, in order. */
    std::vector<uint64_t> trueDurations(ir::ProcId proc) const;

    /** Keep only the first @p n records of @p proc (sample-size sweeps). */
    TimingTrace truncated(ir::ProcId proc, size_t n) const;

    /**
     * Keep only the first @p n records of *every* procedure, in one
     * pass. Equivalent to chaining truncated(proc, n) over all procs,
     * without the O(procs) intermediate trace copies.
     */
    TimingTrace truncatedAll(size_t n) const;

    /** Write as CSV (proc,invocation,start,end,true_cycles). */
    void saveCsv(const std::string &path) const;

    /** Read back a CSV produced by saveCsv; fatal() on malformed input. */
    static TimingTrace loadCsv(const std::string &path);

  private:
    std::vector<TimingRecord> records_;
};

} // namespace ct::trace

#endif // CT_TRACE_TIMING_TRACE_HH
