/**
 * @file
 * ct::relay snapshot wire codec: serialize an estimator-bank snapshot
 * (or a store checkpoint) into a self-validating image, split the
 * image into CRC-framed radio fragments, and reassemble it at the
 * receiver with an all-or-nothing decode.
 *
 * The image wraps the store's checkpoint encoding — the exact same
 * bytes a durable checkpoint writes to disk — in a relay header that
 * names the shipping node and carries the campaign digest
 * (fleet::snapshotDigest of the slots), so a receiver can prove what
 * it adopted equals what the sender held without replaying anything.
 *
 * Image layout (little-endian, one CRC-16 over everything at the end;
 * see docs/RELAY.md):
 *
 *   8 bytes magic   "CTRELAY1"
 *   u32 version     1
 *   u64 snapshotId
 *   u16 sourceNode  relay-tree node (or mote/sink id) that encoded it
 *   u64 walOrdinal  WAL coverage at the ship point (0 for live banks)
 *   u64 digest      fleet::snapshotDigest of the slots (cross-check)
 *   u32 bodyBytes
 *   body            store::encodeCheckpoint({id, walOrdinal, slots})
 *   u16 crc16       over everything above
 *
 * Fragments reuse the ct::net packet framing verbatim: each fragment
 * is a net::Packet whose payload is [u32 index, u32 total, chunk] and
 * whose seq equals the index, so the existing CRC validation, the
 * selective-repeat uplink, and the lossy-channel fault model all apply
 * unchanged. Reassembly collects fragments in any order, dedupes by
 * index, and only ever decodes a *complete* image — a truncated,
 * reordered, duplicated, or bit-corrupted fragment stream yields
 * either the exact original snapshot or a rejection, never a partial
 * adopt (property-tested in tests/prop_relay.cc).
 */

#ifndef CT_RELAY_SNAPSHOT_HH
#define CT_RELAY_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/collector.hh"
#include "net/packet.hh"
#include "store/checkpoint.hh"

namespace ct::relay {

constexpr uint32_t kSnapshotVersion = 1;
extern const uint8_t kSnapshotMagic[8]; // "CTRELAY1"
/** magic + version + id + node + walOrdinal + digest + bodyBytes. */
constexpr size_t kSnapshotHeaderBytes = 8 + 4 + 8 + 2 + 8 + 8 + 4;
/** Per-fragment payload prefix: u32 index + u32 total. */
constexpr size_t kFragmentHeaderBytes = 4 + 4;
/**
 * Default relay MTU. Relay links run base-station to base-station
 * (sink -> region -> root), whose link budget dwarfs the 802.15.4
 * mote uplink — but the framing supports any mtu down to one image
 * byte per fragment, so a snapshot can ship over the mote radio too.
 */
constexpr size_t kDefaultRelayMtu = 224;

/** One shippable snapshot: estimator slots plus shipping metadata. */
struct Snapshot
{
    /** Sender-chosen id (checkpoint id, tree node, campaign epoch). */
    uint64_t id = 0;
    /** Tree node (or mote/sink id) that encoded the snapshot. */
    uint16_t sourceNode = 0;
    /** WAL ordinal the slots cover (0 when shipped off a live bank). */
    uint64_t walOrdinal = 0;
    /** The campaign state itself, sorted by (mote, proc). */
    std::vector<store::EstimatorSlot> slots;

    bool operator==(const Snapshot &other) const = default;

    /** fleet::snapshotDigest of the slots. */
    uint64_t digest() const;
};

/** Snapshot of everything @p bank holds, stamped for shipping. */
Snapshot snapshotFromBank(const net::EstimatorBank &bank, uint64_t id,
                          uint16_t source_node, uint64_t wal_ordinal = 0);

/** Wrap a durable checkpoint for shipping (slots move semantics-free:
 *  copied — the checkpoint usually outlives the wire image anyway). */
Snapshot snapshotFromCheckpoint(const store::Checkpoint &checkpoint,
                                uint16_t source_node);

/** Serialize to the self-validating image (file comment layout). */
std::vector<uint8_t> encodeSnapshotImage(const Snapshot &snapshot);

/**
 * Decode and validate a whole image. All-or-nothing: any framing,
 * version, bounds, CRC, checkpoint-body, or digest violation rejects
 * the image completely.
 * @retval false on rejection; @p out is unspecified then.
 */
bool decodeSnapshotImage(const std::vector<uint8_t> &image, Snapshot &out);

/** The fixed-width header fields alone (store_tool / golden tests). */
struct SnapshotHeader
{
    bool magicOk = false;
    uint32_t version = 0;
    uint64_t id = 0;
    uint16_t sourceNode = 0;
    uint64_t walOrdinal = 0;
    uint64_t digest = 0;
    uint32_t bodyBytes = 0;
};

/** Decode just the header prefix; false when @p image is too short. */
bool decodeSnapshotHeader(const std::vector<uint8_t> &image,
                          SnapshotHeader &out);

/** Stable multi-line rendering of a header (golden-snapshot format —
 *  changing it is a wire-format-spec change, see docs/RELAY.md). */
std::string describeSnapshotHeader(const SnapshotHeader &header);

/**
 * Split @p image into radio fragments for @p node at @p mtu (whole
 * on-air frame budget, net::kHeaderBytes included). Fragment i is a
 * net::Packet{mote = node, seq = i} whose payload is
 * [u32 i, u32 total, chunk]. fatal() when @p mtu cannot fit the
 * packet header, the fragment header, and one image byte.
 */
std::vector<net::Packet> fragmentSnapshot(const std::vector<uint8_t> &image,
                                          uint16_t node,
                                          size_t mtu = kDefaultRelayMtu);

/** Fragments an image of @p image_bytes splits into at @p mtu. */
size_t fragmentCount(size_t image_bytes, size_t mtu = kDefaultRelayMtu);

/** Total on-air bytes of one full (lossless) transmission of
 *  @p image at @p mtu, packet headers included. */
size_t framedSnapshotBytes(size_t image_bytes,
                           size_t mtu = kDefaultRelayMtu);

/** Receiver-side accounting. */
struct ReassemblyStats
{
    uint64_t framesOffered = 0;
    /** CRC / header / fragment-consistency rejections. */
    uint64_t rejected = 0;
    /** Redeliveries of an already-held fragment index. */
    uint64_t duplicates = 0;
    /** Distinct valid fragments accepted. */
    uint64_t accepted = 0;
    /** Payload bytes of accepted fragments (image bytes received). */
    uint64_t bytesAccepted = 0;
};

/**
 * Collects one snapshot's fragments from a lossy link and produces
 * the image only when every fragment is present. Acks mirror the
 * SinkCollector's cumulative + selective shape, so net::MoteUplink
 * drives retransmissions against this receiver unchanged.
 */
class SnapshotReassembler
{
  public:
    /**
     * Offer one on-air frame. Returns the current ack state, or
     * nullopt when the frame failed validation (CRC, malformed
     * fragment header, index echo mismatch, inconsistent total, or a
     * fragment claiming a different source node than the first one
     * accepted).
     */
    std::optional<net::Ack> offer(const uint8_t *frame, size_t size);
    std::optional<net::Ack> offer(const std::vector<uint8_t> &frame);

    /** Every fragment of the announced total is held. */
    bool complete() const;

    /** Whether fragment @p index is already held. */
    bool haveFragment(uint32_t index) const;

    /** Announced fragment count (0 before the first valid fragment). */
    uint32_t expectedFragments() const { return total_.value_or(0); }
    uint32_t fragmentsHeld() const { return uint32_t(chunks_.size()); }

    /**
     * Concatenate the fragments and decode the image. Only succeeds
     * when complete() and the image validates end to end
     * (decodeSnapshotImage) — there is no partial-adopt path.
     */
    bool assemble(Snapshot &out) const;

    /** Same, yielding the raw image bytes (relay forwarding re-uses
     *  the received image without re-encoding). */
    bool assembleImage(std::vector<uint8_t> &out) const;

    const ReassemblyStats &stats() const { return stats_; }

  private:
    std::optional<net::Ack> accept(const net::Packet &packet);
    net::Ack ackState() const;

    std::optional<uint32_t> total_;
    std::optional<uint16_t> node_;
    uint32_t nextExpected_ = 0;
    std::map<uint32_t, std::vector<uint8_t>> chunks_; //!< index -> chunk
    ReassemblyStats stats_;
};

/// @name Snapshot files
/// A snapshot file is exactly the wire image (`.ctsnap` by
/// convention), so a file written at the root of an aggregation tree
/// is byte-identical to what crossed the last link.
/// @{
/** Write atomically (temp + rename, like checkpoints). fatal() on IO
 *  errors. */
void writeSnapshotFile(const std::string &path, const Snapshot &snapshot);

/** Read and fully validate; nullopt when unreadable or invalid. */
std::optional<Snapshot> readSnapshotFile(const std::string &path);

/** Raw image bytes of a snapshot file (header inspection of a file
 *  whose body may be damaged); nullopt when unreadable. */
std::optional<std::vector<uint8_t>>
readSnapshotImage(const std::string &path);
/// @}

} // namespace ct::relay

#endif // CT_RELAY_SNAPSHOT_HH
