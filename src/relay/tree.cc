#include "relay/tree.hh"

#include <algorithm>

#include "exec/thread_pool.hh"
#include "fleet/fleet.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/machine.hh"
#include "util/logging.hh"

namespace ct::relay {

TreeTopology::TreeTopology() : TreeTopology(std::vector<int32_t>{-1}) {}

TreeTopology::TreeTopology(std::vector<int32_t> parents)
    : parent_(std::move(parents))
{
    children_.resize(parent_.size());
    depth_.assign(parent_.size(), 0);
    for (size_t i = 1; i < parent_.size(); ++i) {
        size_t p = size_t(parent_[i]);
        children_[p].push_back(i);
        depth_[i] = depth_[p] + 1;
        maxDepth_ = std::max(maxDepth_, depth_[i]);
    }
}

std::optional<TreeTopology>
TreeTopology::fromParents(std::vector<int32_t> parents)
{
    if (parents.empty() || parents[0] != -1)
        return std::nullopt;
    // Snapshots stamp the node id into a u16 source field.
    if (parents.size() > 65536)
        return std::nullopt;
    for (size_t i = 1; i < parents.size(); ++i) {
        if (parents[i] < 0 || size_t(parents[i]) >= i)
            return std::nullopt;
    }
    return TreeTopology(std::move(parents));
}

TreeTopology
TreeTopology::balanced(size_t fanout, size_t depth)
{
    CT_ASSERT(fanout >= 1, "relay: tree fanout must be >= 1");
    std::vector<int32_t> parents{-1};
    size_t level_begin = 0, level_end = 1;
    for (size_t d = 0; d < depth; ++d) {
        size_t next_begin = parents.size();
        for (size_t p = level_begin; p < level_end; ++p) {
            for (size_t c = 0; c < fanout; ++c) {
                CT_ASSERT(parents.size() < 65536,
                          "relay: tree exceeds 16-bit node ids");
                parents.push_back(int32_t(p));
            }
        }
        level_begin = next_begin;
        level_end = parents.size();
    }
    return TreeTopology(std::move(parents));
}

std::vector<size_t>
TreeTopology::leaves() const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < parent_.size(); ++i) {
        if (children_[i].empty())
            out.push_back(i);
    }
    return out;
}

uint64_t
RelayTreeResult::totalFragmentsSent() const
{
    uint64_t total = 0;
    for (const auto &link : links)
        total += link.ship.uplink.transmissions;
    return total;
}

uint64_t
RelayTreeResult::totalRetransmissions() const
{
    uint64_t total = 0;
    for (const auto &link : links)
        total += link.ship.uplink.retransmissions;
    return total;
}

uint64_t
RelayTreeResult::totalWireBytes() const
{
    uint64_t total = 0;
    for (const auto &link : links)
        total += link.ship.wireBytes;
    return total;
}

uint64_t
RelayTreeResult::totalImageBytes() const
{
    uint64_t total = 0;
    for (const auto &link : links)
        total += link.ship.imageBytes;
    return total;
}

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Per-link channel seed: a function of the campaign seed and the
 *  child node id only, so the fault schedule of every link is fixed
 *  regardless of jobs count or aggregation interleaving. */
uint64_t
linkSeed(uint64_t campaign_seed, size_t child)
{
    uint64_t state =
        campaign_seed ^ 0xd1b54a32d192ed03ULL * (uint64_t(child) + 1);
    return splitmix64(state);
}

/** One logical mote's frames inside the arena. */
struct MotePlan
{
    uint16_t wire = 0;
    uint32_t firstFrame = 0;
    uint32_t frameCount = 0;
};

/** Pre-framed campaign traffic grouped per leaf — the same template
 *  re-stamping fleet::runShardedFleet uses, except motes partition
 *  contiguously across the *leaves*, so leaf banks cover disjoint
 *  (mote, proc) keys and every upward merge is the exact case. */
struct FrameArena
{
    std::vector<uint8_t> bytes;
    std::vector<std::pair<size_t, size_t>> frames; //!< (offset, size)
    std::vector<std::vector<MotePlan>> perLeaf;
};

FrameArena
buildArena(const workloads::Workload &workload,
           const sim::LoweredModule &lowered,
           const sim::SimConfig &sim_config, const RelayTreeConfig &config,
           size_t leaf_count)
{
    size_t templates =
        std::max<size_t>(1, std::min(config.templates, config.motes));
    std::vector<std::vector<std::vector<uint8_t>>> payloads(templates);
    for (size_t t = 0; t < templates; ++t) {
        uint64_t state =
            config.seed ^ 0x9e3779b97f4a7c15ULL * (uint64_t(t) + 1);
        uint64_t sim_seed = splitmix64(state);
        uint64_t input_seed = splitmix64(state);
        auto inputs = workload.makeInputs(input_seed);
        sim::Simulator simulator(*workload.module, lowered, sim_config,
                                 *inputs, sim_seed);
        auto run = simulator.run(workload.entry, config.invocations);
        for (auto &packet :
             net::packetizeTrace(run.trace, /*mote=*/0, config.ingestMtu))
            payloads[t].push_back(std::move(packet.payload));
    }

    FrameArena arena;
    arena.perLeaf.resize(leaf_count);
    for (size_t i = 0; i < config.motes; ++i) {
        // Same wire-id bijection as the fleet campaigns (id 0
        // reserved, ids spread across the space); the leaf partition
        // slices the *logical* index range, so each leaf owns a
        // disjoint set of wire ids no matter how they scatter.
        uint16_t wire = uint16_t(1 + (i % 65535) * 48271ULL % 65535);
        const auto &split = payloads[i % templates];
        MotePlan plan;
        plan.wire = wire;
        plan.firstFrame = uint32_t(arena.frames.size());
        plan.frameCount = uint32_t(split.size());
        for (size_t seq = 0; seq < split.size(); ++seq) {
            net::Packet packet;
            packet.mote = wire;
            packet.seq = uint32_t(seq);
            packet.payload = split[seq];
            auto frame = net::serializePacket(packet);
            arena.frames.emplace_back(arena.bytes.size(), frame.size());
            arena.bytes.insert(arena.bytes.end(), frame.begin(),
                               frame.end());
        }
        arena.perLeaf[i * leaf_count / config.motes].push_back(
            std::move(plan));
    }
    return arena;
}

/** Feed one mote plan's frames into @p collector and evict. */
uint64_t
ingestPlans(const FrameArena &arena, const std::vector<MotePlan> &plans,
            net::SinkCollector &collector)
{
    for (const MotePlan &plan : plans) {
        for (uint32_t f = 0; f < plan.frameCount; ++f) {
            const auto &[offset, size] = arena.frames[plan.firstFrame + f];
            collector.offer(arena.bytes.data() + offset, size);
        }
        collector.evictMote(plan.wire);
    }
    return collector.stats().recordsDelivered;
}

} // namespace

RelayTreeResult
runRelayTree(const workloads::Workload &workload,
             const RelayTreeConfig &config)
{
    CT_SPAN("relay.tree");
    CT_ASSERT(workload.module != nullptr, "relay: workload has no module");
    CT_ASSERT(config.motes > 0, "relay: motes must be >= 1");

    const TreeTopology &tree = config.tree;
    auto leaf_nodes = tree.leaves();
    auto lowered = sim::lowerModule(*workload.module);
    sim::SimConfig sim_config;
    sim_config.cyclesPerTick = config.cyclesPerTick;
    sim_config.timingProbes = true;
    double nested_probe = 2.0 * double(sim_config.costs.timerRead);

    FrameArena arena = buildArena(workload, lowered, sim_config, config,
                                  leaf_nodes.size());

    // One estimator bank per tree node. Leaf banks fill from ingest;
    // interior banks only ever receive shipped snapshots.
    std::vector<net::EstimatorBank> banks;
    banks.reserve(tree.nodes());
    for (size_t i = 0; i < tree.nodes(); ++i) {
        banks.emplace_back(*workload.module, lowered, sim_config.costs,
                           sim_config.policy, config.cyclesPerTick,
                           config.estimator, nested_probe);
    }

    RelayTreeResult result;
    result.leafCount = leaf_nodes.size();
    result.ingestFrameBytes = arena.bytes.size();

    exec::ThreadPool pool(config.jobs);

    // Leaf ingest fans out: each leaf owns its collector and bank, so
    // workers never share mutable state. Frames arrive loss-free at
    // the leaves (the sink hears its own motes directly, as in the
    // fleet arena); the lossy links are the relay hops above.
    obs::StopwatchUs ingest_watch;
    auto leaf_records =
        exec::parallelMap(pool, leaf_nodes.size(), [&](size_t j) {
            net::CollectorConfig collector_config;
            collector_config.retainTraces = false;
            net::SinkCollector collector(collector_config);
            collector.setRecordSink(banks[leaf_nodes[j]].sink());
            return ingestPlans(arena, arena.perLeaf[j], collector);
        });
    result.ingestSeconds = double(ingest_watch.elapsedUs()) / 1e6;
    for (uint64_t records : leaf_records)
        result.records += records;

    // Bottom-up aggregation, one level at a time. Parents of a level
    // fan out over the pool; each parent folds its children serially
    // in ascending node-id order, and per-link channel seeds depend
    // only on (campaign seed, child id) — any jobs count reproduces
    // the same shipping schedule and the same root digest.
    obs::StopwatchUs aggregate_watch;
    std::vector<LinkOutcome> links(tree.nodes());
    for (size_t level = tree.depth(); level >= 1; --level) {
        std::vector<size_t> parents;
        for (size_t node = 0; node < tree.nodes(); ++node) {
            if (!tree.isLeaf(node) && tree.depthOf(node) == level - 1)
                parents.push_back(node);
        }
        exec::parallelMap(pool, parents.size(), [&](size_t pi) {
            size_t parent = parents[pi];
            for (size_t child : tree.children(parent)) {
                LinkOutcome &link = links[child];
                link.child = child;
                link.parent = parent;
                auto snapshot =
                    snapshotFromBank(banks[child], /*id=*/child,
                                     uint16_t(child));
                link.slots = snapshot.slots.size();
                auto received =
                    shipAndReceive(snapshot, config.ship,
                                   linkSeed(config.seed, child), link.ship);
                if (received) {
                    obs::StopwatchUs merge_watch;
                    mergeIntoBank(*received, banks[parent]);
                    link.mergeUs = merge_watch.elapsedUs();
                }
            }
            return 0;
        });
    }
    result.aggregateSeconds = double(aggregate_watch.elapsedUs()) / 1e6;

    result.links.reserve(tree.nodes() > 0 ? tree.nodes() - 1 : 0);
    for (size_t child = 1; child < tree.nodes(); ++child) {
        if (!links[child].ship.adopted)
            ++result.failedLinks;
        result.links.push_back(std::move(links[child]));
    }

    result.estimators = banks[0].estimatorCount();
    result.root = snapshotFromBank(banks[0], /*id=*/config.seed,
                                   /*source_node=*/0);
    result.rootDigest = result.root.digest();

    // The invariant's reference side: one flat sink hearing every
    // mote, in the same per-mote frame order the leaves saw.
    if (config.computeFlatDigest) {
        net::EstimatorBank flat(*workload.module, lowered, sim_config.costs,
                                sim_config.policy, config.cyclesPerTick,
                                config.estimator, nested_probe);
        net::CollectorConfig collector_config;
        collector_config.retainTraces = false;
        net::SinkCollector collector(collector_config);
        collector.setRecordSink(flat.sink());
        for (const auto &plans : arena.perLeaf)
            ingestPlans(arena, plans, collector);
        result.flatDigest = fleet::snapshotDigest(flat.snapshot());
        result.digestMatch = result.rootDigest == result.flatDigest;
    }

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        m.counter("relay.tree_campaigns").add(1);
        m.counter("relay.tree_links").add(result.links.size());
        m.counter("relay.tree_link_failures").add(result.failedLinks);
        m.counter("relay.tree_records").add(result.records);
        m.gauge("relay.tree.nodes").set(double(tree.nodes()));
        m.gauge("relay.tree.depth").set(double(tree.depth()));
        m.gauge("relay.tree.leaves").set(double(result.leafCount));
        for (const auto &link : result.links)
            m.histogram("relay.link_merge_us").record(link.mergeUs);
    }
    return result;
}

} // namespace ct::relay
