/**
 * @file
 * Hierarchical aggregation tree: mote -> sink -> region -> root.
 *
 * Leaf nodes are sinks, each ingesting a disjoint contiguous range of
 * the campaign's motes into its own collector + estimator bank;
 * interior nodes (regions) hold banks that only ever receive shipped
 * snapshots; the root's bank is the fleet profile. Aggregation runs
 * bottom-up, one level at a time: every non-root node encodes its
 * bank as a relay snapshot and ships it to its parent over that
 * link's own seeded lossy channel, and the parent merges the adopted
 * snapshot in (relay::mergeIntoBank). Because the leaves partition
 * the motes, every (mote, proc) key reaches the root along exactly
 * one path and every per-link merge is the *exact* disjoint-key case
 * — so the load-bearing invariant holds bitwise:
 *
 *   root bank digest after tree aggregation
 *     == flat single-sink digest over the same traffic,
 *
 * for any tree shape, depth, per-link loss rate (shipping restarts
 * until adopted), and jobs count (tests/prop_relay.cc, CI's
 * depth-1-vs-3 x jobs diff). Overlapping streams — two leaves
 * hearing the same mote — fall back to mergeSlot's count-weighted
 * blend and deliberately forfeit the bitwise claim; the tree driver
 * keeps ranges disjoint.
 *
 * Determinism: per-link channel seeds derive from (campaign seed,
 * child node id) alone; nodes of one level fan out over the thread
 * pool *per parent*, each parent folding its children in ascending
 * node-id order — so any --jobs value produces the identical root
 * digest.
 */

#ifndef CT_RELAY_TREE_HH
#define CT_RELAY_TREE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "relay/relay.hh"
#include "workloads/workload.hh"

namespace ct::relay {

/**
 * A rooted tree over nodes 0..n-1 in topological order: node 0 is
 * the root and every other node's parent has a smaller id. Leaves
 * (nodes without children) are the sinks; everything else is an
 * aggregation tier.
 */
class TreeTopology
{
  public:
    /** Single-node tree (root == only leaf, degenerate flat case). */
    TreeTopology();

    /**
     * Validated construction from parent links: parents[0] must be
     * -1, parents[i > 0] must lie in [0, i). nullopt otherwise.
     */
    static std::optional<TreeTopology>
    fromParents(std::vector<int32_t> parents);

    /**
     * The regular tree: every node above the deepest level has
     * @p fanout children, @p depth levels below the root (depth 0 is
     * the root alone; depth 2 with fanout 4 is root + 4 regions + 16
     * sinks). fatal() when fanout < 1 or the node count overflows
     * 16-bit node ids (snapshots stamp the node into a u16).
     */
    static TreeTopology balanced(size_t fanout, size_t depth);

    size_t nodes() const { return parent_.size(); }
    /** -1 for the root. */
    int32_t parentOf(size_t node) const { return parent_[node]; }
    size_t depthOf(size_t node) const { return depth_[node]; }
    /** Levels below the root (0 for the single-node tree). */
    size_t depth() const { return maxDepth_; }
    const std::vector<size_t> &children(size_t node) const
    {
        return children_[node];
    }
    bool isLeaf(size_t node) const { return children_[node].empty(); }
    /** Leaf node ids, ascending. */
    std::vector<size_t> leaves() const;

  private:
    explicit TreeTopology(std::vector<int32_t> parents);

    std::vector<int32_t> parent_;
    std::vector<std::vector<size_t>> children_;
    std::vector<size_t> depth_;
    size_t maxDepth_ = 0;
};

/** One tree-aggregation campaign's knobs. */
struct RelayTreeConfig
{
    TreeTopology tree = TreeTopology::balanced(2, 2);
    /** Logical motes, partitioned contiguously across the leaves
     *  (wire ids stride the id space via the fleet bijection). */
    size_t motes = 64;
    /** Invocations each template mote measures. */
    size_t invocations = 8;
    /** Distinct simulated template traces, stamped across motes. */
    size_t templates = 8;
    /** Worker threads for leaf ingest and per-parent aggregation
     *  (0 = auto). Bit-identical results for every value. */
    size_t jobs = 1;
    uint64_t seed = 1;
    uint64_t cyclesPerTick = 1;
    /** Mote-uplink MTU used when packetizing the ingest traffic. */
    size_t ingestMtu = net::kDefaultMtu;
    /** Per-link shipping knobs; each link's channel seed derives from
     *  (seed, child node id). */
    ShipConfig ship;
    tomography::EstimatorOptions estimator;
    /** Also replay the whole campaign into one flat sink and record
     *  its digest (the invariant's reference side). On by default;
     *  large campaigns can skip the second replay. */
    bool computeFlatDigest = true;
};

/** What one tree link (child -> parent) did. */
struct LinkOutcome
{
    size_t child = 0;
    size_t parent = 0;
    /** Estimator slots the child shipped upward. */
    size_t slots = 0;
    ShipOutcome ship;
    /** Parent-side merge latency (mergeIntoBank). */
    int64_t mergeUs = 0;
};

/** Campaign result: per-link detail plus the invariant's two sides. */
struct RelayTreeResult
{
    std::vector<LinkOutcome> links;
    /** The root bank's own snapshot after aggregation (id = campaign
     *  seed, sourceNode = 0) — writeSnapshotFile exports it for
     *  store_tool inspection or a later adopt. */
    Snapshot root;
    /** snapshotDigest of the root bank after aggregation. */
    uint64_t rootDigest = 0;
    /** snapshotDigest of the flat single-sink bank (0 when skipped). */
    uint64_t flatDigest = 0;
    /** rootDigest == flatDigest (vacuously true when skipped). */
    bool digestMatch = true;
    /** Links whose shipping never completed (must be 0 for the
     *  invariant to hold; non-zero means maxAttempts was exhausted). */
    size_t failedLinks = 0;
    size_t leafCount = 0;
    size_t estimators = 0;      //!< in the root bank
    uint64_t records = 0;       //!< delivered across all leaves
    /** On-air bytes of one full framed transmission of the campaign's
     *  record traffic (the arena) — what record-forwarding relays
     *  would put on the wire *per level*; the snapshot-vs-WAL-shipping
     *  baseline in bench_relay (E16). */
    uint64_t ingestFrameBytes = 0;
    double ingestSeconds = 0.0; //!< leaf ingest (fan-out, measured)
    double aggregateSeconds = 0.0; //!< bottom-up shipping + merging

    uint64_t totalFragmentsSent() const;
    uint64_t totalRetransmissions() const;
    uint64_t totalWireBytes() const;
    /** Sum of per-link snapshot image bytes (what a lossless tree
     *  would put on the wire, before framing and retransmits). */
    uint64_t totalImageBytes() const;
};

/**
 * Run one campaign: simulate `templates` motes of @p workload, stamp
 * the frames across `motes` wire ids, ingest each leaf's contiguous
 * mote range into its own sink (fanned out over a thread pool), then
 * aggregate the tree bottom-up (see file comment) and digest-check
 * the root against a flat single-sink replay of the same traffic.
 * Exports `relay.*` metrics after the join (docs/OBSERVABILITY.md).
 */
RelayTreeResult runRelayTree(const workloads::Workload &workload,
                             const RelayTreeConfig &config);

} // namespace ct::relay

#endif // CT_RELAY_TREE_HH
