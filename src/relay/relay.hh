/**
 * @file
 * ct::relay — checkpoint snapshot shipping between collection tiers.
 *
 * PR 7 proved the estimator-bank merge is exact over disjoint mote
 * sets; this subsystem is the missing transport: move a bank's (or a
 * durable checkpoint's) state from one tier to the next as a compact
 * snapshot instead of replaying raw telemetry. A shipped snapshot is
 * fragmented over the ct::net packet framing, driven through a
 * LossyChannel by the selective-repeat uplink, reassembled
 * all-or-nothing at the receiver, and adopted either into a live
 * EstimatorBank (restore — exact) or into a fresh durable store
 * (written as a checkpoint — so the adopting sink's cold recovery
 * replays zero WAL records).
 *
 * The invariants this layer maintains (docs/RELAY.md):
 *
 *   - adopt ≡ local recovery: a fresh sink that adopts a shipped
 *     snapshot holds bit-for-bit the bank the source's own
 *     checkpoint + WAL-replay recovery would restore at the ship
 *     point (tests/prop_relay.cc);
 *   - no partial adopts: a damaged or incomplete fragment stream
 *     yields a rejection, never a half-restored bank;
 *   - shipping is deterministic: one (snapshot, config, seed)
 *     reproduces the same rounds, retransmissions, and bytes.
 */

#ifndef CT_RELAY_RELAY_HH
#define CT_RELAY_RELAY_HH

#include <cstdint>
#include <optional>

#include "net/channel.hh"
#include "net/uplink.hh"
#include "relay/snapshot.hh"
#include "tomography/estimator.hh"

namespace ct::relay {

/** One relay link's shipping knobs. */
struct ShipConfig
{
    /** On-air frame budget of the relay link (see kDefaultRelayMtu). */
    size_t mtu = kDefaultRelayMtu;
    net::ChannelConfig channel;
    net::UplinkConfig uplink;
    /**
     * Full-transfer restarts after the uplink exhausts its per-packet
     * retry budget. Snapshot adoption is all-or-nothing, so unlike
     * record streaming there is no graceful "fewer samples"
     * degradation — a tier that wants the profile keeps asking. Each
     * attempt re-offers every fragment; the receiver dedupes the ones
     * it already holds.
     */
    size_t maxAttempts = 4;
};

/** What one snapshot shipment did. */
struct ShipOutcome
{
    /** The receiver assembled and fully validated the snapshot. */
    bool adopted = false;
    size_t fragments = 0;
    size_t imageBytes = 0;
    uint64_t rounds = 0;
    size_t attempts = 0;
    /** On-air bytes of every frame actually offered to the channel
     *  (retransmissions included; the reverse ack path is abstract). */
    uint64_t wireBytes = 0;
    net::UplinkStats uplink;   //!< summed over attempts
    net::ChannelStats channel; //!< one channel spans all attempts
};

/**
 * Ship @p snapshot over a fresh LossyChannel into @p receiver:
 * encode, fragment, then loop rounds of poll -> send -> drain ->
 * offer -> ack until the uplink finishes, restarting up to
 * ShipConfig::maxAttempts times while the receiver is incomplete.
 * Records `relay.*` obs counters when metrics are enabled.
 */
ShipOutcome shipSnapshot(const Snapshot &snapshot, const ShipConfig &config,
                         uint64_t seed, SnapshotReassembler &receiver);

/**
 * Convenience: ship and adopt in one call. Returns the received
 * snapshot when the transfer completed and validated, nullopt
 * otherwise (outcome still filled either way).
 */
std::optional<Snapshot> shipAndReceive(const Snapshot &snapshot,
                                       const ShipConfig &config,
                                       uint64_t seed, ShipOutcome &outcome);

/// @name Adopt paths
/// @{
/**
 * Restore every slot of @p snapshot into @p bank
 * (EstimatorBank::restoreSlot — exact; an adopting fresh bank
 * continues bit-for-bit where the shipped bank left off).
 */
void adoptIntoBank(const Snapshot &snapshot, net::EstimatorBank &bank);

/**
 * Fold every slot of @p snapshot into @p bank with merge semantics
 * (EstimatorBank::mergeSlot — exact for keys @p bank has never seen,
 * the count-weighted blend for overlapping streams). The aggregation
 * tree's per-link operation.
 */
void mergeIntoBank(const Snapshot &snapshot, net::EstimatorBank &bank);

/**
 * Persist @p snapshot into @p store as a checkpoint covering
 * everything the store holds so far. On a fresh store this is the
 * zero-replay adopt path: reopening recovers the checkpoint with an
 * empty WAL tail, so cold recovery replays nothing — yet the restored
 * bank is bitwise the shipped campaign (docs/RELAY.md's
 * adopt-vs-replay tradeoff).
 */
void adoptIntoStore(const Snapshot &snapshot, store::Store &store);
/// @}

/**
 * Derive a placement-ready module estimate from a shipped snapshot
 * alone — no trace, no WAL replay. Per procedure, every mote's
 * streaming state is folded into one estimate (exact for one mote,
 * the count-weighted blend across motes), and theta feeds the same
 * TimingModel::profileFor conversion the batch estimators use; procs
 * absent from the snapshot keep the agnostic prior, mirroring
 * tomography::estimateModule on an empty trace.
 */
tomography::ModuleEstimate
estimateFromSnapshot(const ir::Module &module,
                     const sim::LoweredModule &lowered,
                     const sim::CostModel &costs, sim::PredictPolicy policy,
                     uint64_t cycles_per_tick, double nested_probe_cycles,
                     const tomography::EstimatorOptions &options,
                     const Snapshot &snapshot);

} // namespace ct::relay

#endif // CT_RELAY_RELAY_HH
