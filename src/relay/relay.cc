#include "relay/relay.hh"

#include "fleet/fleet.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ct::relay {

ShipOutcome
shipSnapshot(const Snapshot &snapshot, const ShipConfig &config,
             uint64_t seed, SnapshotReassembler &receiver)
{
    CT_SPAN("relay.ship");
    auto image = encodeSnapshotImage(snapshot);
    auto fragments =
        fragmentSnapshot(image, snapshot.sourceNode, config.mtu);

    ShipOutcome out;
    out.fragments = fragments.size();
    out.imageBytes = image.size();

    // One channel spans every attempt, so rounds, fault draws, and
    // delayed frames carry across restarts deterministically.
    net::LossyChannel channel(config.channel, seed);
    uint64_t round = 0;
    while (out.attempts < config.maxAttempts && !receiver.complete()) {
        ++out.attempts;
        // Re-offer the full fragment set; the receiver's dedupe and
        // the first ack heard retire everything it already holds
        // (MoteUplink's selective acks are index-addressed, so the
        // uplink must see the complete, gap-free sequence).
        net::MoteUplink uplink(fragments, config.uplink);
        uint64_t attempt_rounds = 0;
        while (!uplink.done() && attempt_rounds < config.uplink.maxRounds) {
            channel.advance();
            for (const net::Packet &packet : uplink.poll(round)) {
                auto frame = net::serializePacket(packet);
                out.wireBytes += frame.size();
                channel.send(frame);
            }
            for (const auto &frame : channel.drain()) {
                auto ack = receiver.offer(frame);
                if (ack && channel.ackSurvives())
                    uplink.onAck(*ack);
            }
            ++round;
            ++attempt_rounds;
        }
        // Delayed frames still in flight when this attempt's sender
        // stopped (they may complete the transfer without a restart).
        for (const auto &frame : channel.flush())
            receiver.offer(frame);

        const auto &stats = uplink.stats();
        out.uplink.transmissions += stats.transmissions;
        out.uplink.retransmissions += stats.retransmissions;
        out.uplink.acksHeard += stats.acksHeard;
        out.uplink.giveUps += stats.giveUps;
    }
    out.rounds = round;
    out.channel = channel.stats();
    out.adopted = receiver.complete();

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        m.counter("relay.snapshots_shipped").add(1);
        m.counter("relay.fragments_sent").add(out.uplink.transmissions);
        m.counter("relay.fragments_retransmitted")
            .add(out.uplink.retransmissions);
        m.counter("relay.fragments_rejected")
            .add(receiver.stats().rejected);
        m.counter("relay.bytes_on_wire").add(out.wireBytes);
        m.counter("relay.ship_rounds").add(out.rounds);
        m.counter("relay.ship_attempts").add(out.attempts);
        m.counter(out.adopted ? "relay.snapshots_adopted"
                              : "relay.snapshots_rejected")
            .add(1);
    }
    return out;
}

std::optional<Snapshot>
shipAndReceive(const Snapshot &snapshot, const ShipConfig &config,
               uint64_t seed, ShipOutcome &outcome)
{
    SnapshotReassembler receiver;
    outcome = shipSnapshot(snapshot, config, seed, receiver);
    Snapshot received;
    if (!outcome.adopted || !receiver.assemble(received)) {
        outcome.adopted = false;
        return std::nullopt;
    }
    return received;
}

void
adoptIntoBank(const Snapshot &snapshot, net::EstimatorBank &bank)
{
    CT_SPAN("relay.adopt");
    obs::StopwatchUs watch;
    for (const auto &slot : snapshot.slots)
        bank.restoreSlot(slot.mote, slot.proc, slot.state);
    if (obs::metricsEnabled()) {
        obs::metrics().histogram("relay.adopt_us").record(watch.elapsedUs());
        obs::metrics().counter("relay.slots_adopted").add(
            snapshot.slots.size());
    }
}

void
mergeIntoBank(const Snapshot &snapshot, net::EstimatorBank &bank)
{
    CT_SPAN("relay.merge");
    obs::StopwatchUs watch;
    for (const auto &slot : snapshot.slots)
        bank.mergeSlot(slot.mote, slot.proc, slot.state);
    if (obs::metricsEnabled()) {
        obs::metrics().histogram("relay.merge_us").record(watch.elapsedUs());
        obs::metrics().counter("relay.slots_merged").add(
            snapshot.slots.size());
    }
}

void
adoptIntoStore(const Snapshot &snapshot, store::Store &store)
{
    store.writeCheckpoint(snapshot.slots);
}

tomography::ModuleEstimate
estimateFromSnapshot(const ir::Module &module,
                     const sim::LoweredModule &lowered,
                     const sim::CostModel &costs, sim::PredictPolicy policy,
                     uint64_t cycles_per_tick, double nested_probe_cycles,
                     const tomography::EstimatorOptions &options,
                     const Snapshot &snapshot)
{
    CT_SPAN("relay.estimate");
    // A snapshot is estimator slots plus provenance; the collapse and
    // bottom-up reconstruction live with the other snapshot consumers.
    return fleet::estimateFromSlots(module, lowered, costs, policy,
                                    cycles_per_tick, nested_probe_cycles,
                                    options, snapshot.slots);
}

} // namespace ct::relay
