#include "relay/snapshot.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "fleet/fleet.hh"
#include "store/format.hh"
#include "util/crc16.hh"
#include "util/logging.hh"

namespace ct::relay {

namespace fs = std::filesystem;

const uint8_t kSnapshotMagic[8] = {'C', 'T', 'R', 'E', 'L', 'A', 'Y', '1'};

uint64_t
Snapshot::digest() const
{
    return fleet::snapshotDigest(slots);
}

Snapshot
snapshotFromBank(const net::EstimatorBank &bank, uint64_t id,
                 uint16_t source_node, uint64_t wal_ordinal)
{
    Snapshot out;
    out.id = id;
    out.sourceNode = source_node;
    out.walOrdinal = wal_ordinal;
    out.slots = bank.snapshot();
    return out;
}

Snapshot
snapshotFromCheckpoint(const store::Checkpoint &checkpoint,
                       uint16_t source_node)
{
    Snapshot out;
    out.id = checkpoint.id;
    out.sourceNode = source_node;
    out.walOrdinal = checkpoint.walOrdinal;
    out.slots = checkpoint.slots;
    return out;
}

std::vector<uint8_t>
encodeSnapshotImage(const Snapshot &snapshot)
{
    store::Checkpoint body;
    body.id = snapshot.id;
    body.walOrdinal = snapshot.walOrdinal;
    body.slots = snapshot.slots;
    auto body_bytes = store::encodeCheckpoint(body);

    std::vector<uint8_t> out;
    out.reserve(kSnapshotHeaderBytes + body_bytes.size() + 2);
    out.insert(out.end(), kSnapshotMagic, kSnapshotMagic + 8);
    store::putU32(out, kSnapshotVersion);
    store::putU64(out, snapshot.id);
    store::putU16(out, snapshot.sourceNode);
    store::putU64(out, snapshot.walOrdinal);
    store::putU64(out, snapshot.digest());
    store::putU32(out, uint32_t(body_bytes.size()));
    out.insert(out.end(), body_bytes.begin(), body_bytes.end());
    store::putU16(out, crc16(out.data(), out.size()));
    return out;
}

bool
decodeSnapshotHeader(const std::vector<uint8_t> &image, SnapshotHeader &out)
{
    if (image.size() < kSnapshotHeaderBytes)
        return false;
    out.magicOk = std::memcmp(image.data(), kSnapshotMagic, 8) == 0;
    size_t cursor = 8;
    return store::getU32(image, cursor, out.version) &&
           store::getU64(image, cursor, out.id) &&
           store::getU16(image, cursor, out.sourceNode) &&
           store::getU64(image, cursor, out.walOrdinal) &&
           store::getU64(image, cursor, out.digest) &&
           store::getU32(image, cursor, out.bodyBytes);
}

bool
decodeSnapshotImage(const std::vector<uint8_t> &image, Snapshot &out)
{
    SnapshotHeader header;
    if (!decodeSnapshotHeader(image, header) || !header.magicOk)
        return false;
    if (header.version != kSnapshotVersion)
        return false;
    // Exact length: header + body + trailing CRC, nothing else. A
    // fragment stream that lost or grew bytes fails here before any
    // slot is looked at.
    if (image.size() !=
        kSnapshotHeaderBytes + size_t(header.bodyBytes) + 2) {
        return false;
    }
    size_t crc_at = image.size() - 2;
    uint16_t stored;
    {
        size_t cursor = crc_at;
        if (!store::getU16(image, cursor, stored))
            return false;
    }
    if (stored != crc16(image.data(), crc_at))
        return false;

    std::vector<uint8_t> body(image.begin() + kSnapshotHeaderBytes,
                              image.begin() + crc_at);
    store::Checkpoint checkpoint;
    if (!store::decodeCheckpoint(body, checkpoint))
        return false;
    // Header and body both carry (id, walOrdinal); they must agree.
    if (checkpoint.id != header.id ||
        checkpoint.walOrdinal != header.walOrdinal) {
        return false;
    }

    out.id = header.id;
    out.sourceNode = header.sourceNode;
    out.walOrdinal = header.walOrdinal;
    out.slots = std::move(checkpoint.slots);
    // The digest ties the image to the campaign state it claims to
    // carry: recompute from the decoded slots and require a match.
    return out.digest() == header.digest;
}

std::string
describeSnapshotHeader(const SnapshotHeader &header)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "magic: %s\n"
                  "version: %u\n"
                  "snapshot id: %llu\n"
                  "source node: %u\n"
                  "wal ordinal: %llu\n"
                  "digest: %016llx\n"
                  "body bytes: %u\n",
                  header.magicOk ? "CTRELAY1" : "INVALID", header.version,
                  (unsigned long long)header.id, header.sourceNode,
                  (unsigned long long)header.walOrdinal,
                  (unsigned long long)header.digest, header.bodyBytes);
    return buf;
}

namespace {

size_t
chunkBytesAt(size_t mtu)
{
    CT_ASSERT(mtu > net::kHeaderBytes + kFragmentHeaderBytes,
              "relay mtu too small for one image byte per fragment");
    return mtu - net::kHeaderBytes - kFragmentHeaderBytes;
}

} // namespace

size_t
fragmentCount(size_t image_bytes, size_t mtu)
{
    size_t chunk = chunkBytesAt(mtu);
    return image_bytes == 0 ? 1 : (image_bytes + chunk - 1) / chunk;
}

std::vector<net::Packet>
fragmentSnapshot(const std::vector<uint8_t> &image, uint16_t node,
                 size_t mtu)
{
    size_t chunk = chunkBytesAt(mtu);
    size_t total = fragmentCount(image.size(), mtu);
    CT_ASSERT(total <= UINT32_MAX, "snapshot image too large to fragment");

    std::vector<net::Packet> out;
    out.reserve(total);
    for (size_t i = 0; i < total; ++i) {
        net::Packet packet;
        packet.mote = node;
        packet.seq = uint32_t(i);
        store::putU32(packet.payload, uint32_t(i));
        store::putU32(packet.payload, uint32_t(total));
        size_t begin = i * chunk;
        size_t end = std::min(begin + chunk, image.size());
        packet.payload.insert(packet.payload.end(), image.begin() + begin,
                              image.begin() + end);
        out.push_back(std::move(packet));
    }
    return out;
}

size_t
framedSnapshotBytes(size_t image_bytes, size_t mtu)
{
    return image_bytes +
           fragmentCount(image_bytes, mtu) *
               (net::kHeaderBytes + kFragmentHeaderBytes);
}

std::optional<net::Ack>
SnapshotReassembler::offer(const uint8_t *frame, size_t size)
{
    ++stats_.framesOffered;
    net::Packet packet;
    if (!net::parsePacket(frame, size, packet)) {
        ++stats_.rejected;
        return std::nullopt;
    }
    return accept(packet);
}

std::optional<net::Ack>
SnapshotReassembler::offer(const std::vector<uint8_t> &frame)
{
    return offer(frame.data(), frame.size());
}

std::optional<net::Ack>
SnapshotReassembler::accept(const net::Packet &packet)
{
    size_t cursor = 0;
    uint32_t index = 0, total = 0;
    if (!store::getU32(packet.payload, cursor, index) ||
        !store::getU32(packet.payload, cursor, total)) {
        ++stats_.rejected;
        return std::nullopt;
    }
    // Consistency gates, each a defense-in-depth layer on top of the
    // packet CRC: the fragment header must echo the packet sequence
    // number, announce a sane total, and agree with every fragment
    // accepted before it about both the total and the source node.
    if (total == 0 || index >= total || index != packet.seq) {
        ++stats_.rejected;
        return std::nullopt;
    }
    if ((total_ && *total_ != total) || (node_ && *node_ != packet.mote)) {
        ++stats_.rejected;
        return std::nullopt;
    }
    if (chunks_.count(index)) {
        ++stats_.duplicates;
        return ackState();
    }

    total_ = total;
    node_ = packet.mote;
    auto &chunk = chunks_[index];
    chunk.assign(packet.payload.begin() + long(kFragmentHeaderBytes),
                 packet.payload.end());
    ++stats_.accepted;
    stats_.bytesAccepted += chunk.size();
    while (chunks_.count(nextExpected_))
        ++nextExpected_;
    return ackState();
}

net::Ack
SnapshotReassembler::ackState() const
{
    net::Ack ack;
    ack.mote = node_.value_or(0);
    ack.nextExpected = nextExpected_;
    for (auto it = chunks_.upper_bound(nextExpected_); it != chunks_.end();
         ++it) {
        ack.selective.push_back(it->first);
    }
    return ack;
}

bool
SnapshotReassembler::complete() const
{
    return total_ && chunks_.size() == *total_;
}

bool
SnapshotReassembler::haveFragment(uint32_t index) const
{
    return chunks_.count(index) != 0;
}

bool
SnapshotReassembler::assembleImage(std::vector<uint8_t> &out) const
{
    if (!complete())
        return false;
    out.clear();
    for (const auto &[index, chunk] : chunks_)
        out.insert(out.end(), chunk.begin(), chunk.end());
    return true;
}

bool
SnapshotReassembler::assemble(Snapshot &out) const
{
    std::vector<uint8_t> image;
    return assembleImage(image) && decodeSnapshotImage(image, out);
}

void
writeSnapshotFile(const std::string &path, const Snapshot &snapshot)
{
    fs::path p(path);
    std::string dir = p.parent_path().string();
    if (dir.empty())
        dir = ".";
    fs::create_directories(dir);
    store::writeFileAtomic(dir, p.filename().string(),
                           encodeSnapshotImage(snapshot));
}

std::optional<std::vector<uint8_t>>
readSnapshotImage(const std::string &path)
{
    return store::readFileBytes(path);
}

std::optional<Snapshot>
readSnapshotFile(const std::string &path)
{
    auto image = readSnapshotImage(path);
    Snapshot out;
    if (!image || !decodeSnapshotImage(*image, out))
        return std::nullopt;
    return out;
}

} // namespace ct::relay
