#include "obs/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace ct::obs {

size_t
SpanTracer::beginSpan(const char *name)
{
    int64_t now = monotonicMicros();
    if (originUs_ < 0)
        originUs_ = now;
    Event event;
    event.name = name;
    event.beginUs = now - originUs_;
    event.depth = depth_++;
    events_.push_back(std::move(event));
    return events_.size() - 1;
}

void
SpanTracer::endSpan(size_t index)
{
    CT_ASSERT(index < events_.size(), "endSpan: bad span index");
    Event &event = events_[index];
    CT_ASSERT(event.open, "endSpan: span already closed");
    event.durUs = monotonicMicros() - originUs_ - event.beginUs;
    event.open = false;
    --depth_;
}

void
SpanTracer::clear()
{
    events_.clear();
    depth_ = 0;
    originUs_ = -1;
}

std::string
SpanTracer::toJson() const
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Event &event : events_) {
        if (event.open)
            continue; // no duration yet; dropping keeps the JSON valid
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":\"" + event.name +
               "\",\"cat\":\"ct\",\"ph\":\"X\",\"ts\":" +
               std::to_string(event.beginUs) +
               ",\"dur\":" + std::to_string(event.durUs) +
               ",\"pid\":1,\"tid\":1,\"args\":{\"depth\":" +
               std::to_string(event.depth) + "}}";
    }
    out += "]}";
    return out;
}

void
SpanTracer::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output '", path, "'");
    out << toJson() << "\n";
}

SpanTracer &
tracer()
{
    static SpanTracer instance = [] {
        SpanTracer t;
        t.setEnabled(!traceOutPathFromEnv().empty());
        return t;
    }();
    return instance;
}

std::string
traceOutPathFromEnv()
{
    const char *path = std::getenv("CT_TRACE_OUT");
    return path ? path : "";
}

} // namespace ct::obs
