#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace ct::obs {

namespace {

/**
 * Per-thread registration cache. Keyed by the owning tracer so the
 * (sole, in practice) singleton and any test-local tracer never mix
 * buffers; re-registering after a clear() is handled by the epoch-free
 * design — buffers live for the tracer's lifetime and are emptied, not
 * dropped, by clear().
 */
struct LocalSlot
{
    const void *owner = nullptr;
    void *buffer = nullptr;
};

thread_local LocalSlot tl_slot;

} // namespace

SpanTracer::ThreadBuffer &
SpanTracer::localBuffer()
{
    if (tl_slot.owner == this)
        return *static_cast<ThreadBuffer *>(tl_slot.buffer);
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = int(buffers_.size());
    tl_slot.owner = this;
    tl_slot.buffer = buffers_.back().get();
    return *buffers_.back();
}

int64_t
SpanTracer::originFor(int64_t now)
{
    int64_t expected = -1;
    originUs_.compare_exchange_strong(expected, now);
    return originUs_.load(std::memory_order_relaxed);
}

size_t
SpanTracer::beginSpan(const char *name)
{
    int64_t now = monotonicMicros();
    int64_t origin = originFor(now);
    ThreadBuffer &buf = localBuffer();
    Event event;
    event.name = name;
    event.beginUs = now - origin;
    event.depth = buf.depth++;
    event.tid = buf.tid;
    buf.events.push_back(std::move(event));
    return buf.events.size() - 1;
}

void
SpanTracer::endSpan(size_t index)
{
    ThreadBuffer &buf = localBuffer();
    CT_ASSERT(index < buf.events.size(), "endSpan: bad span index");
    Event &event = buf.events[index];
    CT_ASSERT(event.open, "endSpan: span already closed");
    event.durUs = monotonicMicros() -
                  originUs_.load(std::memory_order_relaxed) - event.beginUs;
    event.open = false;
    --buf.depth;
}

size_t
SpanTracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &buf : buffers_)
        n += buf->events.size();
    return n;
}

size_t
SpanTracer::openSpans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &buf : buffers_)
        n += size_t(buf->depth);
    return n;
}

std::vector<SpanTracer::Event>
SpanTracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Event> merged;
    for (const auto &buf : buffers_)
        merged.insert(merged.end(), buf->events.begin(), buf->events.end());
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Event &a, const Event &b) {
                         return a.beginUs < b.beginUs;
                     });
    return merged;
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Buffers are emptied, never dropped: threads keep their cached
    // registration (and tid) across epochs.
    for (const auto &buf : buffers_) {
        buf->events.clear();
        buf->depth = 0;
    }
    originUs_.store(-1, std::memory_order_relaxed);
}

std::string
SpanTracer::toJson() const
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Event &event : events()) {
        if (event.open)
            continue; // no duration yet; dropping keeps the JSON valid
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":\"" + event.name +
               "\",\"cat\":\"ct\",\"ph\":\"X\",\"ts\":" +
               std::to_string(event.beginUs) +
               ",\"dur\":" + std::to_string(event.durUs) +
               ",\"pid\":1,\"tid\":" + std::to_string(event.tid) +
               ",\"args\":{\"depth\":" + std::to_string(event.depth) + "}}";
    }
    out += "]}";
    return out;
}

void
SpanTracer::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output '", path, "'");
    out << toJson() << "\n";
}

SpanTracer &
tracer()
{
    // Two-step init: SpanTracer owns a mutex now, so it cannot be
    // moved out of an initializing lambda like it used to be.
    static SpanTracer instance;
    static bool env_applied = [] {
        instance.setEnabled(!traceOutPathFromEnv().empty());
        return true;
    }();
    (void)env_applied;
    return instance;
}

std::string
traceOutPathFromEnv()
{
    const char *path = std::getenv("CT_TRACE_OUT");
    return path ? path : "";
}

} // namespace ct::obs
