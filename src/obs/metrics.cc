#include "obs/metrics.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/csv.hh"
#include "util/logging.hh"

namespace ct::obs {

int64_t
monotonicMicros()
{
    using namespace std::chrono;
    return duration_cast<microseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

namespace detail {

size_t
threadStripe()
{
    // Dense ordinals (0, 1, 2, ...) rather than a thread-id hash:
    // consecutive pool workers land on distinct stripes instead of
    // gambling on hash spread. The ordinal survives for the thread's
    // lifetime, so the stripe pick costs one TLS read per add().
    static std::atomic<size_t> next{0};
    thread_local const size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed);
    return stripe;
}

} // namespace detail

int64_t
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CT_ASSERT(!hist_.cells().empty(), "min() of empty histogram");
    return hist_.cells().begin()->first;
}

int64_t
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CT_ASSERT(!hist_.cells().empty(), "max() of empty histogram");
    return hist_.cells().rbegin()->first;
}

double
Series::back() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CT_ASSERT(!values_.empty(), "back() of empty series");
    return values_.back();
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           series_.empty();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    series_.clear();
}

namespace {

/** Double as a strict-JSON token: %.12g, non-finite mapped to null. */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    return buf;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Append "key":value pairs for one section, comma-separating them. */
template <typename Map, typename Render>
void
appendSection(std::string &out, const char *section, const Map &map,
              Render render)
{
    out += '"';
    out += section;
    out += "\":{";
    bool first = true;
    for (const auto &[name, metric] : map) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(name);
        out += "\":";
        render(out, metric);
    }
    out += '}';
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{";
    appendSection(out, "counters", counters_,
                  [](std::string &o, const Counter &c) {
                      o += std::to_string(c.value());
                  });
    out += ',';
    appendSection(out, "gauges", gauges_,
                  [](std::string &o, const Gauge &g) {
                      o += jsonNumber(g.value());
                  });
    out += ',';
    appendSection(out, "histograms", histograms_,
                  [](std::string &o, const Histogram &h) {
                      o += "{\"count\":" + std::to_string(h.count());
                      o += ",\"mean\":" + jsonNumber(h.mean());
                      if (h.count() > 0) {
                          o += ",\"min\":" + std::to_string(h.min());
                          o += ",\"max\":" + std::to_string(h.max());
                      }
                      o += ",\"cells\":{";
                      bool first = true;
                      for (const auto &[value, count] : h.cells().cells()) {
                          if (!first)
                              o += ',';
                          first = false;
                          o += '"' + std::to_string(value) +
                               "\":" + std::to_string(count);
                      }
                      o += "}}";
                  });
    out += ',';
    appendSection(out, "series", series_,
                  [](std::string &o, const Series &s) {
                      o += '[';
                      bool first = true;
                      for (double v : s.values()) {
                          if (!first)
                              o += ',';
                          first = false;
                          o += jsonNumber(v);
                      }
                      o += ']';
                  });
    out += '}';
    return out;
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics output '", path, "'");
    out << toJson() << "\n";
}

void
MetricsRegistry::writeCsv(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CsvWriter csv(path);
    csv.row("kind", "name", "key", "value");
    for (const auto &[name, c] : counters_)
        csv.row("counter", name, "", c.value());
    for (const auto &[name, g] : gauges_)
        csv.row("gauge", name, "", g.value());
    for (const auto &[name, h] : histograms_)
        for (const auto &[value, count] : h.cells().cells())
            csv.row("histogram", name, std::to_string(value), count);
    for (const auto &[name, s] : series_)
        for (size_t i = 0; i < s.size(); ++i)
            csv.row("series", name, std::to_string(i), s.values()[i]);
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

namespace {

std::atomic<bool> &
metricsEnabledRef()
{
    // Environment consulted once, on first query; setMetricsEnabled()
    // afterwards overrides whatever the environment said. Atomic so
    // pool workers can query while the main thread toggles.
    static std::atomic<bool> enabled{!metricsOutPathFromEnv().empty()};
    return enabled;
}

} // namespace

bool
metricsEnabled()
{
    return metricsEnabledRef().load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool on)
{
    metricsEnabledRef().store(on, std::memory_order_relaxed);
}

std::string
metricsOutPathFromEnv()
{
    const char *path = std::getenv("CT_METRICS_OUT");
    return path ? path : "";
}

} // namespace ct::obs
