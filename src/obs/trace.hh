/**
 * @file
 * Scoped span tracing with Chrome trace-event output.
 *
 * `CT_SPAN("pipeline.estimate")` opens a span for the enclosing scope;
 * completed spans are buffered in the process-wide tracer and exported
 * as Chrome trace-event JSON ("X" complete events), loadable in
 * chrome://tracing or https://ui.perfetto.dev. When the tracer is
 * disabled (the default) a span is one inlined bool test — cheap
 * enough to leave in hot-ish code permanently.
 *
 * The tracer auto-enables on first use when CT_TRACE_OUT is set in the
 * environment; TomographyPipeline writes the buffer there at the end
 * of a run (see api/pipeline.hh), and any caller can flush manually
 * with tracer().writeJson(path).
 *
 * Span names follow the metric naming scheme: `<subsystem>.<verb>`,
 * e.g. `pipeline.measure`, `sim.run`. Not thread-safe by design
 * (single-threaded library).
 */

#ifndef CT_OBS_TRACE_HH
#define CT_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ct::obs {

/** Buffers begin/end span pairs and renders them as trace events. */
class SpanTracer
{
  public:
    /** One completed (or still open) span. */
    struct Event
    {
        std::string name;
        int64_t beginUs = 0; //!< relative to the first span's begin
        int64_t durUs = 0;
        int depth = 0;       //!< nesting level at begin (0 = root)
        bool open = true;    //!< true until endSpan() closes it
    };

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Open a span; returns its index for the matching endSpan().
     * Usually reached via the Span RAII wrapper, not called directly.
     */
    size_t beginSpan(const char *name);
    void endSpan(size_t index);

    size_t eventCount() const { return events_.size(); }
    /** Spans begun but not yet ended (current nesting depth). */
    size_t openSpans() const { return size_t(depth_); }
    const std::vector<Event> &events() const { return events_; }

    /** Drop all buffered events (tests; between repetitions). */
    void clear();

    /**
     * Render buffered spans as Chrome trace-event JSON. Spans still
     * open are skipped (they have no duration yet).
     */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() when the file cannot open. */
    void writeJson(const std::string &path) const;

  private:
    bool enabled_ = false;
    int depth_ = 0;
    int64_t originUs_ = -1; //!< timestamp base; set by the first span
    std::vector<Event> events_;
};

/**
 * The process-wide tracer. First access enables it when CT_TRACE_OUT
 * is set in the environment.
 */
SpanTracer &tracer();

/** Value of CT_TRACE_OUT, or "" when unset. */
std::string traceOutPathFromEnv();

/** RAII span: begins at construction, ends at scope exit. */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (tracer().enabled()) {
            index_ = tracer().beginSpan(name);
            active_ = true;
        }
    }
    ~Span()
    {
        if (active_)
            tracer().endSpan(index_);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    size_t index_ = 0;
    bool active_ = false;
};

#define CT_OBS_CONCAT2(a, b) a##b
#define CT_OBS_CONCAT(a, b) CT_OBS_CONCAT2(a, b)

/** Trace the enclosing scope as one span named @p name. */
#define CT_SPAN(name)                                                         \
    ::ct::obs::Span CT_OBS_CONCAT(ct_obs_span_, __LINE__)(name)

} // namespace ct::obs

#endif // CT_OBS_TRACE_HH
