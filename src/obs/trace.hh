/**
 * @file
 * Scoped span tracing with Chrome trace-event output.
 *
 * `CT_SPAN("pipeline.estimate")` opens a span for the enclosing scope;
 * completed spans are buffered in the process-wide tracer and exported
 * as Chrome trace-event JSON ("X" complete events), loadable in
 * chrome://tracing or https://ui.perfetto.dev. When the tracer is
 * disabled (the default) a span is one inlined bool test — cheap
 * enough to leave in hot-ish code permanently.
 *
 * The tracer auto-enables on first use when CT_TRACE_OUT is set in the
 * environment; TomographyPipeline writes the buffer there at the end
 * of a run (see api/pipeline.hh), and any caller can flush manually
 * with tracer().writeJson(path).
 *
 * Span names follow the metric naming scheme: `<subsystem>.<verb>`,
 * e.g. `pipeline.measure`, `sim.run`.
 *
 * Thread safety: each thread records into its own span buffer
 * (registered with the tracer on the thread's first span, under a
 * mutex), so begin/end pairs never contend and nesting depth is
 * tracked per thread. Buffers are merged at export: events() returns a
 * begin-ordered snapshot across all threads, and toJson() emits each
 * thread's spans under its own `tid`. Exports and clear() must not
 * race with threads actively inside spans — quiesce (join the pool)
 * first, as every caller in this codebase does.
 */

#ifndef CT_OBS_TRACE_HH
#define CT_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ct::obs {

/** Buffers begin/end span pairs and renders them as trace events. */
class SpanTracer
{
  public:
    /** One completed (or still open) span. */
    struct Event
    {
        std::string name;
        int64_t beginUs = 0; //!< relative to the first span's begin
        int64_t durUs = 0;
        int depth = 0;       //!< nesting level at begin (0 = root)
        int tid = 1;         //!< recording thread (1 = first to trace)
        bool open = true;    //!< true until endSpan() closes it
    };

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * Open a span on the calling thread; returns its index for the
     * matching endSpan() (same thread). Usually reached via the Span
     * RAII wrapper, not called directly.
     */
    size_t beginSpan(const char *name);
    void endSpan(size_t index);

    /** Completed + open spans across all threads. */
    size_t eventCount() const;
    /** Spans begun but not yet ended, summed over threads. */
    size_t openSpans() const;
    /** Merged snapshot of all threads' spans, ordered by begin time. */
    std::vector<Event> events() const;

    /** Drop all buffered events (tests; between repetitions). */
    void clear();

    /**
     * Render buffered spans as Chrome trace-event JSON. Spans still
     * open are skipped (they have no duration yet).
     */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() when the file cannot open. */
    void writeJson(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        std::vector<Event> events;
        int depth = 0;
        int tid = 1;
    };

    /** This thread's buffer, registering it on first use. */
    ThreadBuffer &localBuffer();
    /** Timestamp base: set by the first span process-wide. */
    int64_t originFor(int64_t now);

    std::atomic<bool> enabled_{false};
    std::atomic<int64_t> originUs_{-1};
    mutable std::mutex mutex_; //!< guards buffers_ (the list, not entries)
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/**
 * The process-wide tracer. First access enables it when CT_TRACE_OUT
 * is set in the environment.
 */
SpanTracer &tracer();

/** Value of CT_TRACE_OUT, or "" when unset. */
std::string traceOutPathFromEnv();

/** RAII span: begins at construction, ends at scope exit. */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (tracer().enabled()) {
            index_ = tracer().beginSpan(name);
            active_ = true;
        }
    }
    ~Span()
    {
        if (active_)
            tracer().endSpan(index_);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    size_t index_ = 0;
    bool active_ = false;
};

#define CT_OBS_CONCAT2(a, b) a##b
#define CT_OBS_CONCAT(a, b) CT_OBS_CONCAT2(a, b)

/** Trace the enclosing scope as one span named @p name. */
#define CT_SPAN(name)                                                         \
    ::ct::obs::Span CT_OBS_CONCAT(ct_obs_span_, __LINE__)(name)

} // namespace ct::obs

#endif // CT_OBS_TRACE_HH
