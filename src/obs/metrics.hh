/**
 * @file
 * Self-measurement for the Code Tomography pipeline: a process-wide
 * registry of named counters, gauges, latency histograms, and sample
 * series, exportable as JSON or CSV.
 *
 * The library's thesis is that boundary measurements reveal internals;
 * this is the layer that applies the same discipline to the pipeline
 * itself. Recording is gated on a single process-wide flag so that a
 * build with observability off pays (almost) nothing: hot paths check
 * `metricsEnabled()` once per batch, never per instruction.
 *
 * Naming scheme (see docs/OBSERVABILITY.md): dot-separated
 * `<subsystem>.<noun>[_<unit>]`, e.g. `sim.instructions`,
 * `pipeline.measure_us`, `tomography.em.log_likelihood`.
 *
 * Thread safety (see docs/OBSERVABILITY.md for the full contract):
 * the parallel execution engine (exec/thread_pool.hh) records into
 * this process-wide registry from worker threads, so *recording* is
 * thread-safe — registry lookup is mutex-guarded (references returned
 * stay valid for the registry's lifetime), counter adds and gauge sets
 * are atomic, and histogram/series writes take a per-metric mutex. No
 * write is ever lost: concurrent counter totals are exact. *Exports*
 * (toJson/writeCsv) and clear() lock the registry but read individual
 * metrics unlocked, so run them only after parallel work has joined —
 * which is when every caller in this codebase exports anyway. Series
 * interleaving across concurrent writers is the one scheduling-ordered
 * output; see the docs note on telemetry vs result determinism.
 */

#ifndef CT_OBS_METRICS_HH
#define CT_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.hh"

namespace ct::obs {

/** Monotonic wall-clock microseconds (steady_clock). */
int64_t monotonicMicros();

namespace detail {
/** Small per-thread ordinal (stable for the thread's lifetime) used to
 *  spread concurrent writers across counter stripes. */
size_t threadStripe();
} // namespace detail

/**
 * Monotonically increasing event count; adds are atomic, relaxed, and
 * exact. Internally striped: each writing thread lands on one of a
 * few cache-line-padded cells (chosen by a per-thread ordinal), so a
 * fleet of shard workers bumping the *same* counter never ping-pongs
 * one cache line between cores. value() sums the stripes — no write
 * is ever lost, so totals read after parallel work joins are exact
 * (the export contract in the file comment). Reading concurrently
 * with writers yields a monotonic approximation, same as before.
 */
class Counter
{
  public:
    void add(uint64_t n = 1)
    {
        cells_[detail::threadStripe() & (kStripes - 1)].value.fetch_add(
            n, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        uint64_t total = 0;
        for (const Cell &cell : cells_)
            total += cell.value.load(std::memory_order_relaxed);
        return total;
    }

  private:
    /** Power of two so the stripe pick is a mask, not a division. */
    static constexpr size_t kStripes = 8;
    struct alignas(64) Cell
    {
        std::atomic<uint64_t> value{0};
    };
    Cell cells_[kStripes];
};

/** Last-written point-in-time value; set/read are atomic. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution of integer-valued observations (latencies in
 * microseconds, cycle counts, ...); backed by stats/histogram's exact
 * representation, so the full shape survives into the export.
 * Recording takes a per-histogram mutex: concurrent record() calls
 * from pool workers are lossless.
 */
class Histogram
{
  public:
    void record(int64_t value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hist_.add(value);
    }

    /**
     * Fold a locally aggregated histogram in wholesale (one lock for
     * the whole batch). The fleet ingest path records per-mote
     * latencies into a thread-local ExactHistogram per shard and
     * merges here after the fan-out joins — export-time merge instead
     * of a per-sample mutex on the hot path.
     */
    void merge(const ExactHistogram &other)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hist_.merge(other);
    }

    uint64_t count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hist_.total();
    }
    double mean() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hist_.mean();
    }
    int64_t min() const;
    int64_t max() const;

    /** Unlocked view for exports; quiesce writers first. */
    const ExactHistogram &cells() const { return hist_; }

  private:
    mutable std::mutex mutex_;
    ExactHistogram hist_;
};

/**
 * Ordered sequence of samples (e.g. one value per EM iteration).
 * Appends are mutex-guarded; when several threads append to the *same*
 * series the interleaving follows the scheduler (each thread's own
 * samples keep their order).
 */
class Series
{
  public:
    void append(double value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        values_.push_back(value);
    }

    size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return values_.size();
    }
    bool empty() const { return size() == 0; }
    double back() const;
    /** Unlocked view for exports; quiesce writers first. */
    const std::vector<double> &values() const { return values_; }

  private:
    mutable std::mutex mutex_;
    std::vector<double> values_;
};

/**
 * Named metric store. Lookup creates on first use; returned references
 * stay valid for the registry's lifetime (node-based map), so callers
 * may cache them across a hot loop. Lookups are mutex-guarded and safe
 * from any thread.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return counters_[name];
    }
    Gauge &gauge(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return gauges_[name];
    }
    Histogram &histogram(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return histograms_[name];
    }
    Series &series(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return series_[name];
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge> &gauges() const { return gauges_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, Series> &allSeries() const
    {
        return series_;
    }

    bool empty() const;

    /** Drop every metric (tests; between pipeline repetitions). */
    void clear();

    /**
     * Render as one JSON object with "counters"/"gauges"/"histograms"/
     * "series" sections. Keys are sorted, doubles printed with %.12g:
     * identical contents produce byte-identical output.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() when the file cannot open. */
    void writeJson(const std::string &path) const;

    /** Write as CSV rows `kind,name,key,value` to @p path. */
    void writeCsv(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, Series> series_;
};

/** The process-wide registry instrumentation records into. */
MetricsRegistry &metrics();

/**
 * Whether instrumented code should record into metrics(). Defaults to
 * off; flips on the first time it is queried if CT_METRICS_OUT is set
 * in the environment, and can be toggled programmatically (explicit
 * calls win over the environment). The flag is atomic: workers may
 * query it while another thread toggles.
 */
bool metricsEnabled();
void setMetricsEnabled(bool on);

/** Value of CT_METRICS_OUT, or "" when unset. */
std::string metricsOutPathFromEnv();

/** Microsecond stopwatch for latency metrics. */
class StopwatchUs
{
  public:
    StopwatchUs() : start_(monotonicMicros()) {}

    int64_t elapsedUs() const { return monotonicMicros() - start_; }
    void restart() { start_ = monotonicMicros(); }

  private:
    int64_t start_;
};

} // namespace ct::obs

#endif // CT_OBS_METRICS_HH
