/**
 * @file
 * Self-measurement for the Code Tomography pipeline: a process-wide
 * registry of named counters, gauges, latency histograms, and sample
 * series, exportable as JSON or CSV.
 *
 * The library's thesis is that boundary measurements reveal internals;
 * this is the layer that applies the same discipline to the pipeline
 * itself. Recording is gated on a single process-wide flag so that a
 * build with observability off pays (almost) nothing: hot paths check
 * `metricsEnabled()` once per batch, never per instruction.
 *
 * Naming scheme (see docs/OBSERVABILITY.md): dot-separated
 * `<subsystem>.<noun>[_<unit>]`, e.g. `sim.instructions`,
 * `pipeline.measure_us`, `tomography.em.log_likelihood`.
 *
 * Not thread-safe by design — the library is single-threaded (see
 * util/logging.hh for the same convention).
 */

#ifndef CT_OBS_METRICS_HH
#define CT_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.hh"

namespace ct::obs {

/** Monotonic wall-clock microseconds (steady_clock). */
int64_t monotonicMicros();

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(uint64_t n = 1) { value_ += n; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Last-written point-in-time value. */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Distribution of integer-valued observations (latencies in
 * microseconds, cycle counts, ...); backed by stats/histogram's exact
 * representation, so the full shape survives into the export.
 */
class Histogram
{
  public:
    void record(int64_t value) { hist_.add(value); }

    uint64_t count() const { return hist_.total(); }
    double mean() const { return hist_.mean(); }
    int64_t min() const;
    int64_t max() const;

    const ExactHistogram &cells() const { return hist_; }

  private:
    ExactHistogram hist_;
};

/** Ordered sequence of samples (e.g. one value per EM iteration). */
class Series
{
  public:
    void append(double value) { values_.push_back(value); }

    size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    double back() const;
    const std::vector<double> &values() const { return values_; }

  private:
    std::vector<double> values_;
};

/**
 * Named metric store. Lookup creates on first use; returned references
 * stay valid for the registry's lifetime (node-based map), so callers
 * may cache them across a hot loop.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Gauge &gauge(const std::string &name) { return gauges_[name]; }
    Histogram &histogram(const std::string &name)
    {
        return histograms_[name];
    }
    Series &series(const std::string &name) { return series_[name]; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge> &gauges() const { return gauges_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, Series> &allSeries() const
    {
        return series_;
    }

    bool empty() const;

    /** Drop every metric (tests; between pipeline repetitions). */
    void clear();

    /**
     * Render as one JSON object with "counters"/"gauges"/"histograms"/
     * "series" sections. Keys are sorted, doubles printed with %.12g:
     * identical contents produce byte-identical output.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() when the file cannot open. */
    void writeJson(const std::string &path) const;

    /** Write as CSV rows `kind,name,key,value` to @p path. */
    void writeCsv(const std::string &path) const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, Series> series_;
};

/** The process-wide registry instrumentation records into. */
MetricsRegistry &metrics();

/**
 * Whether instrumented code should record into metrics(). Defaults to
 * off; flips on the first time it is queried if CT_METRICS_OUT is set
 * in the environment, and can be toggled programmatically (explicit
 * calls win over the environment).
 */
bool metricsEnabled();
void setMetricsEnabled(bool on);

/** Value of CT_METRICS_OUT, or "" when unset. */
std::string metricsOutPathFromEnv();

/** Microsecond stopwatch for latency metrics. */
class StopwatchUs
{
  public:
    StopwatchUs() : start_(monotonicMicros()) {}

    int64_t elapsedUs() const { return monotonicMicros() - start_; }
    void restart() { start_ = monotonicMicros(); }

  private:
    int64_t start_;
};

} // namespace ct::obs

#endif // CT_OBS_METRICS_HH
