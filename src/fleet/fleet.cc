#include "fleet/fleet.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/machine.hh"
#include "stats/rng.hh"
#include "tomography/timing_model.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace ct::fleet {

ShardLayout::ShardLayout(size_t shards) : shards_(shards)
{
    CT_ASSERT(shards >= 1 && shards <= 256,
              "fleet: shard count must lie in [1, 256]");
    width_ = (65536 + shards - 1) / shards;
}

uint16_t
ShardLayout::firstMote(size_t shard) const
{
    CT_ASSERT(shard < shards_, "fleet: shard index out of range");
    return uint16_t(shard * width_);
}

uint16_t
ShardLayout::lastMote(size_t shard) const
{
    CT_ASSERT(shard < shards_, "fleet: shard index out of range");
    size_t end = (shard + 1) * width_;
    return uint16_t(std::min<size_t>(end, 65536) - 1);
}

std::string
shardDirName(size_t shard)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "shard-%03zu", shard);
    return buf;
}

std::vector<std::string>
shardStoreDirs(const std::string &root)
{
    std::vector<std::string> dirs;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root, ec)) {
        if (!entry.is_directory())
            continue;
        std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) == 0)
            dirs.push_back(entry.path().string());
    }
    std::sort(dirs.begin(), dirs.end());
    return dirs;
}

uint64_t
snapshotDigest(const std::vector<store::EstimatorSlot> &slots)
{
    store::Checkpoint checkpoint;
    checkpoint.id = 0;
    checkpoint.walOrdinal = 0;
    checkpoint.slots = slots;
    auto bytes = encodeCheckpoint(checkpoint);
    uint64_t hash = 14695981039346656037ULL; // FNV-1a offset basis
    for (uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 1099511628211ULL;
    }
    return hash;
}

struct ShardedCollector::Shard
{
    Shard(const ir::Module &module, const sim::LoweredModule &lowered,
          const sim::CostModel &costs, sim::PredictPolicy policy,
          uint64_t cycles_per_tick, const net::CollectorConfig &collector,
          const tomography::EstimatorOptions &options,
          double nested_probe_cycles)
        : sink(collector),
          bank(module, lowered, costs, policy, cycles_per_tick, options,
               nested_probe_cycles)
    {
    }

    std::mutex mutex;
    net::SinkCollector sink;
    net::EstimatorBank bank;
};

ShardedCollector::ShardedCollector(
    const ir::Module &module, const sim::LoweredModule &lowered,
    const sim::CostModel &costs, sim::PredictPolicy policy,
    uint64_t cycles_per_tick, const ShardedCollectorConfig &config,
    const tomography::EstimatorOptions &options, double nested_probe_cycles)
    : config_(config), layout_(config.shards)
{
    shards_.reserve(layout_.shards());
    for (size_t shard = 0; shard < layout_.shards(); ++shard) {
        net::CollectorConfig collector;
        collector.skipAheadPackets = config_.skipAheadPackets;
        collector.retainTraces = config_.retainTraces;
        if (!config_.storeDir.empty()) {
            collector.storeDir =
                (fs::path(config_.storeDir) / shardDirName(shard)).string();
            collector.store = config_.store;
            collector.store.metricsScope = config_.metricsScope + "shard." +
                                           std::to_string(shard) + ".store.";
        }
        shards_.push_back(std::make_unique<Shard>(
            module, lowered, costs, policy, cycles_per_tick, collector,
            options, nested_probe_cycles));
        Shard &slot = *shards_.back();
        slot.sink.setRecordSink(slot.bank.sink());
        // Opening the shard directory already recovered the durable
        // prefix (ct::store's invariant, unchanged per shard); resume
        // feeds it into this shard's bank.
        if (slot.sink.store() && config_.resumeFromStore)
            net::resumeBank(*slot.sink.store(), slot.bank);
    }
}

ShardedCollector::ShardedCollector(ShardedCollector &&) noexcept = default;
ShardedCollector::~ShardedCollector() = default;

std::unique_lock<std::mutex>
ShardedCollector::lockFor(size_t shard)
{
    size_t victim = config_.locking == Locking::Global ? 0 : shard;
    return std::unique_lock<std::mutex>(shards_[victim]->mutex);
}

std::optional<net::Ack>
ShardedCollector::offer(const uint8_t *frame, size_t size)
{
    // Route on the raw mote field; validation happens inside the
    // shard (see the header comment on corrupted mote bytes).
    uint16_t mote =
        size >= 2 ? uint16_t(uint16_t(frame[0]) | uint16_t(frame[1]) << 8)
                  : 0;
    size_t shard = layout_.shardOf(mote);
    auto lock = lockFor(shard);
    return shards_[shard]->sink.offer(frame, size);
}

std::optional<net::Ack>
ShardedCollector::offer(const std::vector<uint8_t> &frame)
{
    return offer(frame.data(), frame.size());
}

void
ShardedCollector::finalizeMote(uint16_t mote)
{
    size_t shard = layout_.shardOf(mote);
    auto lock = lockFor(shard);
    shards_[shard]->sink.finalize(mote);
}

void
ShardedCollector::evictMote(uint16_t mote)
{
    size_t shard = layout_.shardOf(mote);
    auto lock = lockFor(shard);
    shards_[shard]->sink.evictMote(mote);
}

void
ShardedCollector::flush()
{
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
        auto lock = lockFor(shard);
        if (shards_[shard]->sink.store())
            shards_[shard]->sink.store()->flush();
    }
}

void
ShardedCollector::checkpoint()
{
    for (auto &shard : shards_) {
        if (!shard->sink.store())
            continue;
        shard->sink.store()->writeCheckpoint(shard->bank.snapshot());
        shard->sink.store()->compact();
    }
}

net::SinkCollector &
ShardedCollector::collector(size_t shard)
{
    CT_ASSERT(shard < shards_.size(), "fleet: shard index out of range");
    return shards_[shard]->sink;
}

net::EstimatorBank &
ShardedCollector::bank(size_t shard)
{
    CT_ASSERT(shard < shards_.size(), "fleet: shard index out of range");
    return shards_[shard]->bank;
}

const net::EstimatorBank &
ShardedCollector::bank(size_t shard) const
{
    CT_ASSERT(shard < shards_.size(), "fleet: shard index out of range");
    return shards_[shard]->bank;
}

net::CollectorStats
ShardedCollector::stats() const
{
    net::CollectorStats total;
    for (const auto &shard : shards_) {
        const auto &s = shard->sink.stats();
        total.framesOffered += s.framesOffered;
        total.rejected += s.rejected;
        total.malformedPayloads += s.malformedPayloads;
        total.duplicates += s.duplicates;
        total.stale += s.stale;
        total.accepted += s.accepted;
        total.skippedPackets += s.skippedPackets;
        total.recordsDelivered += s.recordsDelivered;
    }
    return total;
}

size_t
ShardedCollector::estimatorCount() const
{
    size_t total = 0;
    for (const auto &shard : shards_)
        total += shard->bank.estimatorCount();
    return total;
}

std::vector<store::EstimatorSlot>
ShardedCollector::mergedSnapshot() const
{
    std::vector<store::EstimatorSlot> merged;
    for (const auto &shard : shards_) {
        auto slots = shard->bank.snapshot();
        if (!merged.empty() && !slots.empty()) {
            // Contiguous-range routing makes shard-order concatenation
            // globally sorted; guard the premise rather than re-sort.
            const auto &last = merged.back();
            const auto &next = slots.front();
            CT_ASSERT(std::make_pair(last.mote, last.proc) <
                          std::make_pair(next.mote, next.proc),
                      "fleet: shard snapshots out of order");
        }
        merged.insert(merged.end(),
                      std::make_move_iterator(slots.begin()),
                      std::make_move_iterator(slots.end()));
    }
    return merged;
}

void
ShardedCollector::mergeInto(net::EstimatorBank &target) const
{
    for (const auto &shard : shards_)
        target.mergeFrom(shard->bank);
}

namespace {

int64_t
monotonicNanos()
{
    using namespace std::chrono;
    return duration_cast<nanoseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** Independent seed stream for one template mote. */
struct TemplateSeeds
{
    uint64_t sim, inputs;
};

TemplateSeeds
seedsFor(uint64_t fleet_seed, size_t index)
{
    uint64_t state =
        fleet_seed ^ 0x9e3779b97f4a7c15ULL * (uint64_t(index) + 1);
    TemplateSeeds seeds;
    seeds.sim = splitmix64(state);
    seeds.inputs = splitmix64(state);
    return seeds;
}

/** One logical mote's frames inside the arena. */
struct MotePlan
{
    uint16_t wire = 0;
    uint32_t firstFrame = 0;
    uint32_t frameCount = 0;
};

/** Pre-framed campaign traffic: every frame of every logical mote,
 *  flat, grouped per shard — built outside the timed region. */
struct FrameArena
{
    std::vector<uint8_t> bytes;
    std::vector<std::pair<size_t, size_t>> frames; //!< (offset, size)
    std::vector<std::vector<MotePlan>> perShard;
};

FrameArena
buildArena(const workloads::Workload &workload,
           const sim::LoweredModule &lowered, const sim::SimConfig &sim_config,
           const ShardedFleetConfig &config, const ShardLayout &layout)
{
    // Simulate a few template motes; a campaign's motes re-stamp the
    // template payloads with their own wire id (the header + CRC are
    // per mote, the payload bytes are not).
    size_t templates = std::max<size_t>(1, std::min(config.templates,
                                                    config.motes));
    std::vector<std::vector<std::vector<uint8_t>>> payloads(templates);
    for (size_t t = 0; t < templates; ++t) {
        TemplateSeeds seeds = seedsFor(config.seed, t);
        auto inputs = workload.makeInputs(seeds.inputs);
        sim::Simulator simulator(*workload.module, lowered, sim_config,
                                 *inputs, seeds.sim);
        auto run = simulator.run(workload.entry, config.invocations);
        for (auto &packet :
             net::packetizeTrace(run.trace, /*mote=*/0, config.mtu))
            payloads[t].push_back(std::move(packet.payload));
    }

    FrameArena arena;
    arena.perShard.resize(layout.shards());
    for (size_t i = 0; i < config.motes; ++i) {
        // 48271 is coprime to 65535, so i -> wire is a bijection per
        // 65535-mote wave that *spreads* ids across the space — every
        // shard range gets its share of any campaign size — while
        // staying independent of the shard count (the digest
        // invariant). Id 0 is reserved, as in net::runFleet.
        uint16_t wire = uint16_t(1 + (i % 65535) * 48271ULL % 65535);
        const auto &split = payloads[i % templates];
        MotePlan plan;
        plan.wire = wire;
        plan.firstFrame = uint32_t(arena.frames.size());
        plan.frameCount = uint32_t(split.size());
        for (size_t seq = 0; seq < split.size(); ++seq) {
            net::Packet packet;
            packet.mote = wire;
            packet.seq = uint32_t(seq);
            packet.payload = split[seq];
            auto frame = net::serializePacket(packet);
            arena.frames.emplace_back(arena.bytes.size(), frame.size());
            arena.bytes.insert(arena.bytes.end(), frame.begin(),
                               frame.end());
        }
        arena.perShard[layout.shardOf(wire)].push_back(plan);
    }
    return arena;
}

} // namespace

uint64_t
ShardedFleetResult::totalFrames() const
{
    uint64_t total = 0;
    for (const auto &shard : shards)
        total += shard.frames;
    return total;
}

uint64_t
ShardedFleetResult::totalRecords() const
{
    uint64_t total = 0;
    for (const auto &shard : shards)
        total += shard.records;
    return total;
}

uint64_t
ShardedFleetResult::totalMotes() const
{
    uint64_t total = 0;
    for (const auto &shard : shards)
        total += shard.motes;
    return total;
}

double
ShardedFleetResult::recordsPerSecond() const
{
    return ingestSeconds > 0.0 ? double(totalRecords()) / ingestSeconds
                               : 0.0;
}

ShardedFleetResult
runShardedFleet(const workloads::Workload &workload,
                const ShardedFleetConfig &config,
                std::unique_ptr<ShardedCollector> *collector_out)
{
    CT_SPAN("fleet.campaign");
    CT_ASSERT(workload.module != nullptr, "fleet workload has no module");
    CT_ASSERT(config.motes > 0, "fleet: motes must be >= 1");

    auto lowered = sim::lowerModule(*workload.module);
    sim::SimConfig sim_config;
    sim_config.cyclesPerTick = config.cyclesPerTick;
    sim_config.timingProbes = true;

    ShardLayout layout(config.collector.shards);
    obs::StopwatchUs build_watch;
    FrameArena arena =
        buildArena(workload, lowered, sim_config, config, layout);

    auto sharded_owner = std::make_unique<ShardedCollector>(
        *workload.module, lowered, sim_config.costs, sim_config.policy,
        config.cyclesPerTick, config.collector, config.estimator,
        2.0 * double(sim_config.costs.timerRead));
    ShardedCollector &sharded = *sharded_owner;

    ShardedFleetResult result;
    result.buildSeconds = double(build_watch.elapsedUs()) / 1e6;

    // The measured region: per-shard frame streams fan out over the
    // pool, each worker ingesting whole shards (round-robin static
    // assignment, exec/thread_pool.hh), so shard locks never contend.
    obs::StopwatchUs ingest_watch;
    std::vector<ExactHistogram> latencies(layout.shards());
    exec::ThreadPool pool(config.jobs);
    result.shards = exec::parallelMap(pool, layout.shards(), [&](size_t s) {
        ShardOutcome out;
        out.shard = s;
        int64_t shard_start = obs::monotonicMicros();
        for (const MotePlan &plan : arena.perShard[s]) {
            int64_t mote_start = monotonicNanos();
            for (uint32_t f = 0; f < plan.frameCount; ++f) {
                const auto &[offset, size] =
                    arena.frames[plan.firstFrame + f];
                sharded.offer(arena.bytes.data() + offset, size);
            }
            sharded.evictMote(plan.wire);
            latencies[s].add(monotonicNanos() - mote_start);
            ++out.motes;
            out.frames += plan.frameCount;
        }
        out.ingestUs = obs::monotonicMicros() - shard_start;
        out.records = sharded.collector(s).stats().recordsDelivered;
        out.estimators = sharded.bank(s).estimatorCount();
        out.estObservations = sharded.bank(s).observations();
        if (latencies[s].total() > 0) {
            out.p50IngestNs = latencies[s].percentile(0.50);
            out.p99IngestNs = latencies[s].percentile(0.99);
        }
        return out;
    });
    result.ingestSeconds = double(ingest_watch.elapsedUs()) / 1e6;

    if (config.checkpointAtEnd)
        sharded.checkpoint();

    result.estimators = sharded.estimatorCount();
    result.mergedDigest = snapshotDigest(sharded.mergedSnapshot());

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        const std::string &scope = config.collector.metricsScope;
        m.counter(scope + "frames_offered").add(result.totalFrames());
        m.counter(scope + "records_delivered").add(result.totalRecords());
        m.counter(scope + "motes_ingested").add(result.totalMotes());
        m.gauge(scope + "shards").set(double(layout.shards()));
        ExactHistogram campaign;
        for (const auto &hist : latencies)
            campaign.merge(hist);
        if (campaign.total() > 0) {
            m.gauge(scope + "ingest.p50_ns")
                .set(double(campaign.percentile(0.50)));
            m.gauge(scope + "ingest.p99_ns")
                .set(double(campaign.percentile(0.99)));
        }
        for (const auto &shard : result.shards)
            m.histogram(scope + "shard_ingest_us").record(shard.ingestUs);
    }
    if (collector_out != nullptr)
        *collector_out = std::move(sharded_owner);
    return result;
}

tomography::ModuleEstimate
estimateFromSlots(const ir::Module &module, const sim::LoweredModule &lowered,
                  const sim::CostModel &costs, sim::PredictPolicy policy,
                  uint64_t cycles_per_tick, double nested_probe_cycles,
                  const tomography::EstimatorOptions &options,
                  const std::vector<store::EstimatorSlot> &slots)
{
    CT_SPAN("fleet.estimate");
    // Collapse the per-(mote, proc) states onto one pseudo-mote: the
    // first state of a procedure restores exactly, every further mote
    // folds in with the count-weighted blend — the same operation the
    // aggregation tree applies to overlapping streams.
    net::EstimatorBank collapsed(module, lowered, costs, policy,
                                 cycles_per_tick, options,
                                 nested_probe_cycles);
    for (const auto &slot : slots)
        collapsed.mergeSlot(0, slot.proc, slot.state);

    tomography::ModuleEstimate out;
    out.profile.resize(module.procedureCount());
    out.thetas.resize(module.procedureCount());
    out.results.resize(module.procedureCount());
    out.meanCycles.assign(module.procedureCount(), 0.0);
    out.varCycles.assign(module.procedureCount(), 0.0);
    for (ir::ProcId id : tomography::bottomUpOrder(module)) {
        const auto &proc = module.procedure(id);
        tomography::TimingModel model(proc, lowered.procs[id], costs, policy,
                                      cycles_per_tick, out.meanCycles,
                                      nested_probe_cycles, out.varCycles);
        auto theta = collapsed.theta(0, id);
        if (theta.empty())
            theta.assign(model.paramCount(), 0.5);
        CT_ASSERT(theta.size() == model.paramCount(),
                  "slot theta arity does not match the module");
        out.thetas[id] = theta;
        out.meanCycles[id] = model.meanCycles(theta);
        out.varCycles[id] = model.varianceCycles(theta);
        out.profile[id] = model.profileFor(theta);
    }
    return out;
}

std::vector<ShardPlan>
planShardBudgets(const ir::Module &module, const sim::LoweredModule &current,
                 const sim::CostModel &costs, sim::PredictPolicy policy,
                 const ShardedCollector &collector,
                 const FleetPlanConfig &config)
{
    CT_SPAN("fleet.plan");
    CT_ASSERT(!config.classes.empty(),
              "planShardBudgets: at least one mote class required");
    obs::StopwatchUs stopwatch;

    // Each worker plans whole shards into indexed slots; everything a
    // plan depends on (the shard's slots, the class budget) is data,
    // so any jobs value produces bit-identical plans.
    exec::ThreadPool pool(config.jobs);
    auto plans = exec::parallelMap(
        pool, collector.shards(), [&](size_t shard) {
            const MoteClass &cls =
                config.classes[shard % config.classes.size()];
            auto slots = collector.bank(shard).snapshot();
            auto estimate = estimateFromSlots(
                module, current, costs, policy, config.cyclesPerTick,
                config.nestedProbeCycles, config.estimator, slots);
            auto theta = causal::normalizeTheta(module,
                                                std::move(estimate.thetas));

            ShardPlan out;
            out.shard = shard;
            out.className = cls.name;
            out.estimators = slots.size();
            auto instance = budget::buildInstance(
                module, current, costs, policy, config.entry, theta,
                estimate.profile, cls.budget, config.instance);
            out.plan =
                budget::solve(instance, config.solver, config.limits);
            out.orders = budget::applyAssignment(instance,
                                                 out.plan.assignment,
                                                 module.procedureCount());
            for (ir::ProcId id = 0; id < module.procedureCount(); ++id) {
                if (out.orders[id].empty())
                    out.orders[id] = sim::naturalOrder(module.procedure(id));
            }
            out.layoutDigest = layout::layoutDigest(out.orders);
            return out;
        });

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        m.counter("fleet.plans").add(plans.size());
        size_t upgrades = 0, deferred = 0;
        for (const ShardPlan &plan : plans) {
            upgrades += plan.plan.upgrades;
            deferred += plan.plan.deferred;
        }
        m.counter("fleet.plan_upgrades").add(upgrades);
        m.counter("fleet.plan_deferred").add(deferred);
        m.histogram("fleet.plan_us").record(stopwatch.elapsedUs());
    }
    return plans;
}

} // namespace ct::fleet
