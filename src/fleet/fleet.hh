/**
 * @file
 * ct::fleet — sharded fleet-scale collection.
 *
 * The single SinkCollector + EstimatorBank pair scales to one sink
 * thread; a deployment worth the paper's while has 10^5..10^6 motes
 * reporting. This subsystem shards the whole collection pipeline by
 * mote range: each shard owns a private collector, estimator bank, and
 * (optionally) durable store — a share-nothing column — so shards
 * ingest concurrently with no shared mutable state beyond the routing
 * table. The design leans on three facts:
 *
 *   - routing is a pure function of the mote id (ShardLayout), so a
 *     frame touches exactly one shard;
 *   - every (mote, procedure) estimator stream lives wholly inside
 *     one shard, so the union of per-shard banks *is* the unsharded
 *     bank — merging is exact, bit for bit, and associative/
 *     commutative over disjoint mote sets (EstimatorBank::mergeFrom,
 *     property-tested in tests/prop_fleet_merge.cc);
 *   - each shard's store is a complete ct::store directory
 *     (`<root>/shard-NNN`) with its own WAL ordinals and checkpoints,
 *     so the store's crash-recovery invariant — recovery equals a
 *     from-scratch replay of the durable prefix — holds per shard
 *     unchanged, and sharded recovery is just per-shard recovery plus
 *     the exact merge.
 *
 * Concurrency: offer() takes the owning shard's mutex (or one global
 * mutex in Locking::Global mode, kept for measuring what the sharding
 * buys — see bench/bench_fleet.cc). When the ingest fan-out assigns
 * whole shards to workers, the per-shard locks are uncontended and the
 * ingest path is wait-free in practice.
 *
 * Determinism: a shard's final state depends only on the frames routed
 * to it and their per-mote order, never on scheduling; mergedSnapshot()
 * is sorted by (mote, proc). Any --jobs value and any shard count
 * produce the identical merged snapshot, which CI checks by diffing
 * bench_fleet's deterministic CSV across both axes.
 */

#ifndef CT_FLEET_FLEET_HH
#define CT_FLEET_FLEET_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "budget/budget.hh"
#include "net/collector.hh"
#include "stats/histogram.hh"
#include "tomography/estimator.hh"
#include "workloads/workload.hh"

namespace ct::fleet {

/**
 * Contiguous-range partition of the 16-bit mote id space. With S
 * shards, shard s owns ids [s*W, (s+1)*W) for W = ceil(65536/S); the
 * mapping is a division, needs no knowledge of which motes exist, and
 * keeps each shard's id range contiguous — which is what makes the
 * concatenation of per-shard (mote, proc)-sorted snapshots globally
 * sorted.
 */
class ShardLayout
{
  public:
    /** @p shards must lie in [1, 256]. */
    explicit ShardLayout(size_t shards);

    size_t shards() const { return shards_; }
    size_t shardOf(uint16_t mote) const { return size_t(mote) / width_; }
    /** First mote id shard @p shard owns. */
    uint16_t firstMote(size_t shard) const;
    /** Last mote id shard @p shard owns (inclusive). */
    uint16_t lastMote(size_t shard) const;

  private:
    size_t shards_;
    size_t width_;
};

/** How offer() serializes against concurrent callers. */
enum class Locking
{
    /** One mutex per shard: callers touching different shards never
     *  contend. The default, and what the fan-out drivers use. */
    PerShard,
    /** One mutex across all shards — deliberately the contended
     *  configuration, kept so bench_fleet can measure the cost the
     *  per-shard design removes. */
    Global,
};

/** Knobs for a sharded collection pipeline. */
struct ShardedCollectorConfig
{
    /** Shard count, in [1, 256]. */
    size_t shards = 4;
    /**
     * When non-empty, each shard opens a ct::store at
     * `<storeDir>/shard-NNN` and WALs its deliveries there. Opening an
     * existing root *is* sharded recovery: each shard recovers its own
     * durable prefix and (when resumeFromStore) resumes its bank.
     */
    std::string storeDir;
    /** Per-shard durability knobs. metricsScope is derived per shard
     *  (`<metricsScope>shard.N.store.`); the value here is ignored. */
    store::StoreConfig store;
    /** Replay each shard's recovered store into its bank on open. */
    bool resumeFromStore = true;
    /** See net::CollectorConfig::skipAheadPackets. */
    size_t skipAheadPackets = 32;
    /** Keep reassembled per-mote traces (off: fleet-scale footprint;
     *  see net::CollectorConfig::retainTraces). */
    bool retainTraces = false;
    Locking locking = Locking::PerShard;
    /** Prefix for this pipeline's obs metrics. */
    std::string metricsScope = "fleet.";
};

/**
 * The sharded collection pipeline: per shard one SinkCollector (CRC,
 * dedupe, reorder, skip-ahead), one EstimatorBank, and optionally one
 * durable store. Thread-safe per the Locking mode; everything else
 * (accessors, merges, checkpoints) expects ingest to be quiesced,
 * matching the export contract everywhere else in the library.
 */
class ShardedCollector
{
  public:
    /** Estimator-bank construction parameters are those of
     *  net::EstimatorBank, applied identically to every shard. */
    ShardedCollector(const ir::Module &module,
                     const sim::LoweredModule &lowered,
                     const sim::CostModel &costs, sim::PredictPolicy policy,
                     uint64_t cycles_per_tick,
                     const ShardedCollectorConfig &config = {},
                     const tomography::EstimatorOptions &options = {},
                     double nested_probe_cycles = 0.0);
    ShardedCollector(ShardedCollector &&) noexcept;
    ~ShardedCollector(); // out of line: Shard is incomplete here

    /**
     * Route one on-air frame to its mote's shard and offer it there.
     * Routing peeks the (unvalidated) mote field; a frame whose mote
     * bytes were corrupted lands in the wrong shard, where the CRC
     * check rejects it — the rejection is counted in that shard's
     * stats, and totals stay exact.
     */
    std::optional<net::Ack> offer(const uint8_t *frame, size_t size);
    std::optional<net::Ack> offer(const std::vector<uint8_t> &frame);

    /** Finalize @p mote's transfer in its shard. */
    void finalizeMote(uint16_t mote);
    /** Finalize and drop @p mote's collector state in its shard (the
     *  bank keeps its estimators; see SinkCollector::evictMote). */
    void evictMote(uint16_t mote);

    /** Flush every shard's store (no-op without stores). */
    void flush();
    /** Checkpoint every shard's bank into its own store, then
     *  compact that store. No-op without stores. */
    void checkpoint();

    const ShardLayout &layout() const { return layout_; }
    size_t shards() const { return layout_.shards(); }
    net::SinkCollector &collector(size_t shard);
    net::EstimatorBank &bank(size_t shard);
    const net::EstimatorBank &bank(size_t shard) const;

    /** Collector stats summed across shards (quiesced ingest). */
    net::CollectorStats stats() const;
    /** Estimators held across all shard banks. */
    size_t estimatorCount() const;

    /**
     * The campaign-wide estimator snapshot: per-shard snapshots
     * concatenated in shard order, which contiguous-range routing
     * makes globally (mote, proc)-sorted — byte-identical to the
     * snapshot an unsharded bank over the same traffic would write.
     */
    std::vector<store::EstimatorSlot> mergedSnapshot() const;

    /** Fold every shard's bank into @p target (exact — disjoint mote
     *  sets; see EstimatorBank::mergeFrom). */
    void mergeInto(net::EstimatorBank &target) const;

  private:
    struct Shard;

    std::unique_lock<std::mutex> lockFor(size_t shard);

    ShardedCollectorConfig config_;
    ShardLayout layout_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/** `shard-NNN`, the store subdirectory name for @p shard. */
std::string shardDirName(size_t shard);

/**
 * Sorted full paths of the `shard-NNN` subdirectories under @p root;
 * empty when @p root holds none (i.e. it is, at most, one unsharded
 * store). Both store_tool fsck and pipeline recovery use this to
 * detect a sharded root.
 */
std::vector<std::string> shardStoreDirs(const std::string &root);

/**
 * FNV-1a over the deterministic checkpoint encoding of @p slots: a
 * stable 64-bit fingerprint of an estimator snapshot. Two campaigns
 * produced the same estimates iff the digests match — the value
 * bench_fleet's determinism CSV carries across jobs/shard sweeps.
 */
uint64_t snapshotDigest(const std::vector<store::EstimatorSlot> &slots);

/**
 * Rebuild a module estimate from raw estimator slots: collapse the
 * per-(mote, proc) states onto one pseudo-mote with the count-weighted
 * blend, then walk procedures bottom-up re-deriving thetas, per-proc
 * timing, and the synthetic edge profile — the same reconstruction the
 * single-mote pipeline performs from its own bank. Shared by
 * relay::estimateFromSnapshot (a snapshot is slots plus provenance)
 * and the per-shard budget planner below.
 */
tomography::ModuleEstimate estimateFromSlots(
    const ir::Module &module, const sim::LoweredModule &lowered,
    const sim::CostModel &costs, sim::PredictPolicy policy,
    uint64_t cycles_per_tick, double nested_probe_cycles,
    const tomography::EstimatorOptions &options,
    const std::vector<store::EstimatorSlot> &slots);

/** One hardware class in a heterogeneous fleet. */
struct MoteClass
{
    std::string name;
    /** Per-round reprogramming budget for motes of this class. */
    budget::BudgetSpec budget;
};

/** Knobs for planShardBudgets(). */
struct FleetPlanConfig
{
    /** Hardware classes; shard s is class `classes[s % classes.size()]`
     *  (round-robin over the contiguous shard ranges). Must be
     *  non-empty. */
    std::vector<MoteClass> classes;
    /** Candidate pricing knobs, shared across classes. */
    budget::InstanceOptions instance;
    budget::Solver solver = budget::Solver::Auto;
    budget::DpLimits limits;
    /** Event entry procedure for the causal engine's call rates. */
    ir::ProcId entry = 0;
    uint64_t cyclesPerTick = 1;
    double nestedProbeCycles = 0.0;
    /** Estimator options for the per-shard estimate reconstruction. */
    tomography::EstimatorOptions estimator;
    /** Worker threads for the per-shard fan-out (0 = auto). */
    size_t jobs = 1;
};

/** One shard's budgeted placement decision. */
struct ShardPlan
{
    size_t shard = 0;
    std::string className;
    budget::BudgetPlan plan;
    /** Materialized per-procedure orders ("keep" becomes the explicit
     *  natural order, so the digest below identifies the layout). */
    std::vector<sim::BlockOrder> orders;
    uint64_t layoutDigest = 0;
    /** Estimator slots the shard's snapshot contributed. */
    size_t estimators = 0;
};

/**
 * Heterogeneous-fleet budgeted placement: for every shard of
 * @p collector, snapshot its bank, rebuild the shard-local estimate,
 * price candidates with the causal model against @p current, and solve
 * the shard's knapsack under its hardware class's budget. Shards are
 * planned concurrently (`jobs` workers) writing indexed slots, so the
 * result is bit-identical for any jobs value. Ingest must be quiesced,
 * as for every other bank accessor.
 */
std::vector<ShardPlan> planShardBudgets(const ir::Module &module,
                                        const sim::LoweredModule &current,
                                        const sim::CostModel &costs,
                                        sim::PredictPolicy policy,
                                        const ShardedCollector &collector,
                                        const FleetPlanConfig &config);

/** One ingest campaign's knobs (see runShardedFleet). */
struct ShardedFleetConfig
{
    /**
     * Logical mote transfers to ingest. Wire ids stride the 16-bit id
     * space via a fixed bijection (independent of the shard count, so
     * every shard range receives its share of any campaign size);
     * beyond 65535 transfers, ids recycle — each transfer is evicted
     * when it completes, so a recycled id starts a fresh stream at the
     * collector while its estimators keep accumulating per wire id
     * (the on-air format's namespace).
     */
    size_t motes = 64;
    /** Invocations each template mote measures (records per mote). */
    size_t invocations = 8;
    /** Distinct simulated template traces, stamped across motes. */
    size_t templates = 8;
    /** Worker threads for the ingest fan-out (0 = auto). */
    size_t jobs = 1;
    uint64_t seed = 1;
    uint64_t cyclesPerTick = 1;
    size_t mtu = net::kDefaultMtu;
    ShardedCollectorConfig collector;
    tomography::EstimatorOptions estimator;
    /** writeCheckpoint + compact every shard store at campaign end. */
    bool checkpointAtEnd = true;
};

/** What one shard's ingest loop saw and did. */
struct ShardOutcome
{
    size_t shard = 0;
    uint64_t motes = 0;
    uint64_t frames = 0;
    uint64_t records = 0;
    /** Per-mote transfer ingest latency over this shard's motes. */
    int64_t p50IngestNs = 0;
    int64_t p99IngestNs = 0;
    /** Wall time this shard's ingest loop ran (its motes, serially). */
    int64_t ingestUs = 0;
    size_t estimators = 0;
    uint64_t estObservations = 0;
};

/** Campaign result: per-shard detail plus the merged fingerprint. */
struct ShardedFleetResult
{
    std::vector<ShardOutcome> shards;
    /** snapshotDigest of mergedSnapshot() — invariant across jobs and
     *  shard counts for a fixed (workload, motes, seed, ...). */
    uint64_t mergedDigest = 0;
    size_t estimators = 0;
    double buildSeconds = 0.0;  //!< frame-arena construction (untimed
                                //!< region of the benchmark)
    double ingestSeconds = 0.0; //!< the measured fan-out

    uint64_t totalFrames() const;
    uint64_t totalRecords() const;
    uint64_t totalMotes() const;
    /** Campaign records / ingestSeconds. */
    double recordsPerSecond() const;
};

/**
 * Run one ingest campaign: simulate `templates` motes of @p workload
 * (probes on), pre-frame their traces once per logical mote into a
 * flat arena (untimed), then fan the per-shard frame streams out over
 * a thread pool — each worker ingests whole shards, so per-shard locks
 * never contend — and report throughput, per-shard latency quantiles,
 * and the merged snapshot digest. Exports `fleet.*` metrics after the
 * join (docs/OBSERVABILITY.md).
 *
 * When @p collector_out is non-null it receives the campaign's
 * collector (ingest quiesced), ready for planShardBudgets() or any
 * other bank accessor.
 */
ShardedFleetResult
runShardedFleet(const workloads::Workload &workload,
                const ShardedFleetConfig &config,
                std::unique_ptr<ShardedCollector> *collector_out = nullptr);

} // namespace ct::fleet

#endif // CT_FLEET_FLEET_HH
