/**
 * @file
 * ct::budget — budgeted multi-objective placement selection.
 *
 * The paper's placement loop optimizes one unconstrained objective
 * (predicted cycles). A deployed mote is not unconstrained: rewriting
 * a procedure's code image costs flash page-writes, the block remap
 * costs RAM, and every reprogramming byte costs energy the battery
 * never gets back. This subsystem recasts placement as cost/benefit
 * *selection* (docs/BUDGET.md): per procedure a small set of candidate
 * layouts — "keep" (free) plus re-placements priced by the causal
 * model — and a multiple-choice knapsack over three resource
 * dimensions (flash bytes, RAM bytes, reprogramming nanojoules).
 *
 * The benefit side leans on the causal engine's central fact: the
 * absorbing-chain visit vector depends only on the CFG and theta,
 * never on physical order. One chain factorization per procedure
 * prices every candidate order exactly
 * (causal::placedSelfCyclesPerInvocation), so a whole instance is
 * built without a single re-simulation.
 *
 * Two solvers, cross-checked differentially (tests/prop_budget.cc):
 *
 *  - exactSolve: a DP over (group × discretized budget) that is
 *    provably optimal on every instance it accepts. Discretization is
 *    *exact*, not approximate: each constrained dimension is scaled by
 *    the gcd of its candidate costs, so every reachable usage is
 *    representable and the only acceptance criterion is table size.
 *  - greedySolve: the ROADMAP's bang-for-buck rule — concave
 *    per-group frontiers walked globally by delta-per-flash-byte.
 *    Feasible by construction on every instance, within the DP
 *    optimum whenever the DP accepts; solve() reports the measured
 *    gap.
 */

#ifndef CT_BUDGET_BUDGET_HH
#define CT_BUDGET_BUDGET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "causal/causal.hh"
#include "ir/module.hh"
#include "ir/profile.hh"
#include "layout/placement.hh"
#include "sim/costs.hh"
#include "sim/energy.hh"
#include "sim/lower.hh"

namespace ct::budget {

/** Sentinel: the dimension is not constrained. */
constexpr uint64_t kUnlimited = ~uint64_t(0);

/** One mote's reprogramming budget (per re-placement round). */
struct BudgetSpec
{
    /** Flash pages available for rewritten code images. */
    uint64_t flashPages = kUnlimited;
    /** Bytes per flash page (TelosB internal flash: 256). */
    uint64_t pageBytes = 256;
    /** RAM bytes available for remap tables / fixups. */
    uint64_t ramBytes = kUnlimited;
    /** Reprogramming energy budget in nanojoules. */
    uint64_t energyNanojoules = kUnlimited;

    /** Flash budget in bytes (kUnlimited stays kUnlimited). */
    uint64_t flashBytes() const
    {
        return flashPages == kUnlimited ? kUnlimited
                                        : flashPages * pageBytes;
    }
    /** True when no dimension constrains anything. */
    bool unconstrained() const
    {
        return flashPages == kUnlimited && ramBytes == kUnlimited &&
               energyNanojoules == kUnlimited;
    }

    /** Everything zero: only zero-cost choices are feasible. */
    static BudgetSpec zero()
    {
        BudgetSpec s;
        s.flashPages = 0;
        s.ramBytes = 0;
        s.energyNanojoules = 0;
        return s;
    }
    /** No constraint on any dimension (the default). */
    static BudgetSpec unlimited() { return BudgetSpec{}; }
};

/** What applying one candidate layout costs the mote. */
struct ReprogramCostModel
{
    /** Flash bytes per lowered instruction slot (16-bit words). */
    uint64_t bytesPerSlot = 2;
    /** Fixed RAM for a procedure's remap entry. */
    uint64_t ramBytesPerProc = 6;
    /** RAM per block whose physical position moved (fixup entry). */
    uint64_t ramBytesPerMovedBlock = 2;
    /** Flash write energy per byte (TelosB internal flash, ~nJ/B). */
    double writeNanojoulesPerByte = 135.0;
    /** Page-erase energy (every touched page erases once). */
    double eraseNanojoulesPerPage = 90'000.0;
};

/** One candidate layout for one procedure. */
struct Candidate
{
    /** "keep" | layout::layoutName of the producing strategy. */
    std::string name;
    /** Physical block order; empty means keep the current placement. */
    sim::BlockOrder order;

    /// @name Benefit (per entry event, from the causal pricing model)
    /// @{
    double gainCyclesPerEvent = 0.0; //!< may be negative
    double gainEnergyMicrojoulesPerEvent = 0.0;
    /** Scalarized objective: cycles + energyWeight * energy. */
    double gain = 0.0;
    /// @}

    /// @name Cost (one-time, against the BudgetSpec)
    /// @{
    uint64_t flashBytes = 0;
    uint64_t ramBytes = 0;
    uint64_t energyNanojoules = 0;
    /// @}
};

/** One procedure's choice set. candidates[0] is always the zero-cost
 *  "keep" (asserted by the solvers): an instance is never infeasible. */
struct Group
{
    ir::ProcId proc = ir::kNoProc;
    std::string name;
    std::vector<Candidate> candidates;
};

/** A complete selection problem. */
struct Instance
{
    std::vector<Group> groups;
    BudgetSpec budget;
    /** Context for reporting (0 when synthetic). */
    double baselineCyclesPerEvent = 0.0;
};

/** Knobs for buildInstance(). */
struct InstanceOptions
{
    /** Candidate strategies per procedure, in listed order. Ties in
     *  gain resolve toward the *later* candidate, so listing
     *  ProfileGuided last makes the unconstrained solution coincide
     *  with plain PG placement bitwise (the degenerate identity in
     *  docs/BUDGET.md). */
    std::vector<layout::LayoutKind> kinds = {
        layout::LayoutKind::Dfs, layout::LayoutKind::ProfileGuided};
    ReprogramCostModel reprogram;
    /** Objective weight on energy (µJ/event) next to cycles/event. */
    double energyWeight = 0.0;
    /** Energy model converting penalty cycles to µJ (CPU-active). */
    sim::EnergyModel energy = sim::telosEnergyModel();
    /** When non-empty, only these procedures get groups (the causal
     *  gate's survivors in continuous PGO); otherwise every
     *  procedure, invoked or not, so degenerate budgets reproduce
     *  whole-module layouts bitwise. */
    std::vector<ir::ProcId> restrictTo;
};

/**
 * Price every (procedure, candidate) pair and assemble an Instance.
 *
 * @param current the deployed lowering candidates are priced against
 *                ("keep" keeps it; gains are deltas from it);
 * @param theta   per-procedure branch probabilities (normalizeTheta'd);
 * @param profile edge profile feeding ProfileGuided candidate orders.
 *
 * Records budget.* obs metrics when enabled.
 */
Instance buildInstance(const ir::Module &module,
                       const sim::LoweredModule &current,
                       const sim::CostModel &costs, sim::PredictPolicy policy,
                       ir::ProcId entry, const causal::ModuleTheta &theta,
                       const ir::ModuleProfile &profile,
                       const BudgetSpec &budget,
                       const InstanceOptions &options = {});

/** Total cost of an assignment, per dimension. */
struct Usage
{
    uint64_t flashBytes = 0;
    uint64_t ramBytes = 0;
    uint64_t energyNanojoules = 0;
};

/** One candidate chosen per group. */
struct Assignment
{
    /** candidate index per group (choice.size() == groups.size()). */
    std::vector<size_t> choice;
    double gain = 0.0;
    double gainCyclesPerEvent = 0.0;
    double gainEnergyMicrojoulesPerEvent = 0.0;
    Usage usage;
};

/** Does @p choice fit @p instance's budget in every dimension? */
bool feasible(const Instance &instance, const std::vector<size_t> &choice);

/** Sum gains/costs of @p choice into a full Assignment. */
Assignment evaluateAssignment(const Instance &instance,
                              std::vector<size_t> choice);

/** Which solver solve() should run. */
enum class Solver {
    Auto,   //!< exact when accepted (greedy still run for the gap),
            //!< greedy otherwise
    Exact,  //!< exact only; falls back to greedy when rejected
    Greedy, //!< greedy only (no gap measurement)
};

/** Exact-solver acceptance caps (reject = fall back to greedy). */
struct DpLimits
{
    /** Max cells in the quantized budget lattice. */
    size_t maxCells = size_t(1) << 18;
    /** Max bytes across the value + choice tables. */
    size_t maxTableBytes = size_t(1) << 25;
};

/** exactSolve outcome. */
struct ExactResult
{
    /** The instance fit the caps and the assignment is optimal. */
    bool accepted = false;
    /** Why not, when !accepted ("cells=... > maxCells=..."). */
    std::string rejectReason;
    Assignment assignment;
};

/**
 * Provably optimal selection by dynamic programming over the
 * gcd-quantized budget lattice (docs/BUDGET.md gives the recurrence).
 * Dimensions that are unlimited — or whose candidate costs are all
 * zero — collapse out of the lattice, so a flash-only sweep stays
 * cheap even with three budget fields present.
 */
ExactResult exactSolve(const Instance &instance, const DpLimits &limits = {});

/**
 * Delta-per-flash-byte greedy: per group, the concave frontier of
 * (flashBytes, gain); globally, hull steps applied in decreasing
 * Δgain/Δflash order (Δflash == 0 with positive Δgain ranks first),
 * each step taken only if all three budgets still fit — a step that
 * does not fit closes its group. Feasible by construction; never
 * exceeds the exact optimum (the differential property).
 */
Assignment greedySolve(const Instance &instance);

/** What solve() decided and how the solvers compared. */
struct BudgetPlan
{
    Assignment assignment; //!< the chosen one
    std::string solver;    //!< "exact" | "greedy"

    bool exactRan = false;
    std::string exactSkipReason; //!< set when Auto/Exact fell back
    double exactGain = 0.0;      //!< exactRan only
    double greedyGain = 0.0;
    /** 100 * (exactGain - greedyGain) / exactGain; 0 when either the
     *  exact solver did not run or the optimum is <= 0. */
    double optimalityGapPct = 0.0;

    /** Dimension d is *binding* when some rejected higher-gain
     *  upgrade of a single group would overrun d (docs/BUDGET.md has
     *  a worked example). */
    bool flashBinding = false;
    bool ramBinding = false;
    bool energyBinding = false;

    /** Non-"keep" choices in the assignment. */
    size_t upgrades = 0;
    /** Groups where a higher-gain candidate exists but no budget
     *  admits it — the work a bigger budget would unlock. */
    size_t deferred = 0;
};

/**
 * Run the configured solver(s), cross-check, mark binding dimensions,
 * and record budget.* metrics. With an unconstrained budget both
 * solvers share the per-group argmax fast path (later candidate wins
 * gain ties), which is exact by inspection.
 */
BudgetPlan solve(const Instance &instance, Solver solver = Solver::Auto,
                 const DpLimits &limits = {});

/**
 * Materialize an assignment as per-procedure block orders over
 * @p proc_count procedures: chosen upgrades get their candidate's
 * order, everything else stays empty ("keep" — which lowerModule
 * treats as natural; callers whose current layout is not natural
 * overlay onto their own current orders instead).
 */
std::vector<sim::BlockOrder> applyAssignment(const Instance &instance,
                                             const Assignment &assignment,
                                             size_t proc_count);

} // namespace ct::budget

#endif // CT_BUDGET_BUDGET_HH
