#include "budget/budget.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/rng.hh"
#include "util/logging.hh"

namespace ct::budget {

namespace {

/** The three resource dimensions, uniformly addressable. */
constexpr size_t kDims = 3;

uint64_t
budgetOf(const BudgetSpec &spec, size_t dim)
{
    switch (dim) {
      case 0:
        return spec.flashBytes();
      case 1:
        return spec.ramBytes;
      default:
        return spec.energyNanojoules;
    }
}

uint64_t
costOf(const Candidate &cand, size_t dim)
{
    switch (dim) {
      case 0:
        return cand.flashBytes;
      case 1:
        return cand.ramBytes;
      default:
        return cand.energyNanojoules;
    }
}

void
checkInstance(const Instance &instance)
{
    for (const Group &group : instance.groups) {
        CT_ASSERT(!group.candidates.empty(), "budget: group '", group.name,
                  "' has no candidates");
        const Candidate &keep = group.candidates.front();
        CT_ASSERT(keep.flashBytes == 0 && keep.ramBytes == 0 &&
                      keep.energyNanojoules == 0,
                  "budget: group '", group.name,
                  "' candidate 0 must be the zero-cost keep");
    }
}

/**
 * The unconstrained solution both solvers share: per group, the
 * highest-gain candidate, ties resolved toward the *later* candidate
 * (so a ProfileGuided candidate listed last wins over an equal-gain
 * keep — the degenerate infinite-budget identity in docs/BUDGET.md).
 */
Assignment
unconstrainedArgmax(const Instance &instance)
{
    std::vector<size_t> choice(instance.groups.size(), 0);
    for (size_t g = 0; g < instance.groups.size(); ++g) {
        const auto &cands = instance.groups[g].candidates;
        for (size_t c = 1; c < cands.size(); ++c) {
            if (cands[c].gain >= cands[choice[g]].gain)
                choice[g] = c;
        }
    }
    return evaluateAssignment(instance, std::move(choice));
}

/** One constrained dimension of the DP lattice. */
struct LatticeDim
{
    size_t dim = 0;     //!< 0 flash, 1 ram, 2 energy
    uint64_t unit = 1;  //!< gcd of every candidate cost in this dim
    uint64_t cap = 0;   //!< floor(budget / unit)
    size_t stride = 1;  //!< flattened-index stride
};

/** A point of a group's greedy frontier. */
struct FrontierPoint
{
    size_t candidate = 0;
    uint64_t flash = 0;
    double gain = 0.0;
};

/**
 * The concave (flash, gain) frontier of one group, starting at keep.
 * Dominated candidates drop out; the surviving gains are strictly
 * increasing in flash and the marginal Δgain/Δflash strictly
 * decreasing (a zero-Δflash step counts as infinite slope).
 */
std::vector<FrontierPoint>
concaveFrontier(const Group &group)
{
    struct Pt
    {
        uint64_t flash;
        double gain;
        size_t idx;
    };
    std::vector<Pt> pts;
    for (size_t c = 1; c < group.candidates.size(); ++c) {
        if (group.candidates[c].gain > 0.0)
            pts.push_back(
                {group.candidates[c].flashBytes, group.candidates[c].gain, c});
    }
    std::sort(pts.begin(), pts.end(), [](const Pt &a, const Pt &b) {
        if (a.flash != b.flash)
            return a.flash < b.flash;
        if (a.gain != b.gain)
            return a.gain < b.gain;
        return a.idx < b.idx;
    });

    std::vector<FrontierPoint> front;
    front.push_back({0, 0, 0.0}); // keep
    for (const Pt &p : pts) {
        FrontierPoint &back = front.back();
        if (front.size() > 1 && p.flash == back.flash && p.gain >= back.gain) {
            back = {p.idx, p.flash, p.gain}; // later candidate wins ties
        } else if (p.gain > back.gain) {
            front.push_back({p.idx, p.flash, p.gain});
        } // else dominated: more flash, no more gain
    }

    // Concavity: drop interior points whose incoming slope does not
    // strictly exceed the outgoing one.
    auto slope = [](const FrontierPoint &a, const FrontierPoint &b) {
        return b.flash == a.flash ? std::numeric_limits<double>::infinity()
                                  : (b.gain - a.gain) /
                                        double(b.flash - a.flash);
    };
    std::vector<FrontierPoint> hull;
    for (const FrontierPoint &p : front) {
        while (hull.size() >= 2 &&
               slope(hull[hull.size() - 1], p) >=
                   slope(hull[hull.size() - 2], hull[hull.size() - 1])) {
            hull.pop_back();
        }
        hull.push_back(p);
    }
    return hull;
}

} // namespace

bool
feasible(const Instance &instance, const std::vector<size_t> &choice)
{
    CT_ASSERT(choice.size() == instance.groups.size(),
              "budget: choice covers ", choice.size(), " of ",
              instance.groups.size(), " groups");
    uint64_t usage[kDims] = {0, 0, 0};
    for (size_t g = 0; g < choice.size(); ++g) {
        const auto &cands = instance.groups[g].candidates;
        CT_ASSERT(choice[g] < cands.size(), "budget: group ", g,
                  " choice #", choice[g], " out of range");
        for (size_t d = 0; d < kDims; ++d)
            usage[d] += costOf(cands[choice[g]], d);
    }
    for (size_t d = 0; d < kDims; ++d) {
        uint64_t cap = budgetOf(instance.budget, d);
        if (cap != kUnlimited && usage[d] > cap)
            return false;
    }
    return true;
}

Assignment
evaluateAssignment(const Instance &instance, std::vector<size_t> choice)
{
    CT_ASSERT(choice.size() == instance.groups.size(),
              "budget: choice covers ", choice.size(), " of ",
              instance.groups.size(), " groups");
    Assignment out;
    out.choice = std::move(choice);
    for (size_t g = 0; g < out.choice.size(); ++g) {
        const auto &cands = instance.groups[g].candidates;
        CT_ASSERT(out.choice[g] < cands.size(), "budget: group ", g,
                  " choice #", out.choice[g], " out of range");
        const Candidate &cand = cands[out.choice[g]];
        out.gain += cand.gain;
        out.gainCyclesPerEvent += cand.gainCyclesPerEvent;
        out.gainEnergyMicrojoulesPerEvent +=
            cand.gainEnergyMicrojoulesPerEvent;
        out.usage.flashBytes += cand.flashBytes;
        out.usage.ramBytes += cand.ramBytes;
        out.usage.energyNanojoules += cand.energyNanojoules;
    }
    return out;
}

ExactResult
exactSolve(const Instance &instance, const DpLimits &limits)
{
    CT_SPAN("budget.exact");
    checkInstance(instance);
    ExactResult out;
    if (instance.budget.unconstrained()) {
        out.accepted = true;
        out.assignment = unconstrainedArgmax(instance);
        return out;
    }

    // Build the quantized lattice: one axis per dimension that both
    // has a finite budget and has some nonzero candidate cost. The
    // gcd scaling is exact — every reachable usage is a multiple of
    // the unit, so flooring the budget loses no feasible point.
    std::vector<LatticeDim> dims;
    for (size_t d = 0; d < kDims; ++d) {
        uint64_t cap = budgetOf(instance.budget, d);
        if (cap == kUnlimited)
            continue;
        uint64_t unit = 0;
        for (const Group &group : instance.groups) {
            for (const Candidate &cand : group.candidates)
                unit = std::gcd(unit, costOf(cand, d));
        }
        if (unit == 0)
            continue; // every cost is zero: the dimension cannot bind
        dims.push_back({d, unit, cap / unit, 1});
    }

    size_t cells = 1;
    for (LatticeDim &ld : dims) {
        ld.stride = cells;
        if (ld.cap + 1 > limits.maxCells / cells) {
            out.rejectReason = "lattice cells exceed maxCells=" +
                               std::to_string(limits.maxCells);
            return out;
        }
        cells *= size_t(ld.cap + 1);
    }
    size_t groups = instance.groups.size();
    size_t table_bytes = cells * sizeof(double) * 2 + cells * groups;
    if (table_bytes > limits.maxTableBytes) {
        out.rejectReason = "tables need " + std::to_string(table_bytes) +
                           " bytes > maxTableBytes=" +
                           std::to_string(limits.maxTableBytes);
        return out;
    }

    // dp[cell] = best gain over the processed groups when the residual
    // capacity is the cell's coordinate vector. Candidate 0 costs
    // nothing, so every cell is always reachable. Ties resolve toward
    // the later candidate (>=), matching unconstrainedArgmax.
    std::vector<double> dp(cells, 0.0), next(cells);
    std::vector<uint8_t> pick(cells * groups, 0);
    std::vector<size_t> coord(dims.size());
    for (size_t g = 0; g < groups; ++g) {
        const auto &cands = instance.groups[g].candidates;
        CT_ASSERT(cands.size() <= 255,
                  "budget: more than 255 candidates in one group");
        std::fill(coord.begin(), coord.end(), 0);
        for (size_t cell = 0; cell < cells; ++cell) {
            double best = 0.0;
            uint8_t best_c = 0;
            bool first = true;
            for (size_t c = 0; c < cands.size(); ++c) {
                size_t from = cell;
                bool fits = true;
                for (size_t k = 0; k < dims.size(); ++k) {
                    uint64_t q = costOf(cands[c], dims[k].dim) /
                                 dims[k].unit;
                    if (q > coord[k]) {
                        fits = false;
                        break;
                    }
                    from -= size_t(q) * dims[k].stride;
                }
                if (!fits)
                    continue;
                double value = dp[from] + cands[c].gain;
                if (first || value >= best) {
                    best = value;
                    best_c = uint8_t(c);
                    first = false;
                }
            }
            next[cell] = best;
            pick[g * cells + cell] = best_c;
            // Odometer step through the lattice coordinates.
            for (size_t k = 0; k < dims.size(); ++k) {
                if (++coord[k] <= dims[k].cap)
                    break;
                coord[k] = 0;
            }
        }
        dp.swap(next);
    }

    // Walk the choice table back from the full-capacity cell.
    std::vector<size_t> choice(groups, 0);
    size_t cell = cells - 1;
    for (size_t g = groups; g-- > 0;) {
        size_t c = pick[g * cells + cell];
        choice[g] = c;
        for (size_t k = 0; k < dims.size(); ++k) {
            uint64_t q =
                costOf(instance.groups[g].candidates[c], dims[k].dim) /
                dims[k].unit;
            cell -= size_t(q) * dims[k].stride;
        }
    }
    out.accepted = true;
    out.assignment = evaluateAssignment(instance, std::move(choice));
    CT_ASSERT(feasible(instance, out.assignment.choice),
              "budget: exact assignment violates its own budget");
    return out;
}

Assignment
greedySolve(const Instance &instance)
{
    CT_SPAN("budget.greedy");
    checkInstance(instance);
    if (instance.budget.unconstrained())
        return unconstrainedArgmax(instance);

    struct Step
    {
        size_t group = 0;
        size_t level = 0; //!< frontier level this step moves *to*
        double ratio = 0.0;
    };
    std::vector<std::vector<FrontierPoint>> fronts;
    std::vector<Step> steps;
    for (size_t g = 0; g < instance.groups.size(); ++g) {
        fronts.push_back(concaveFrontier(instance.groups[g]));
        const auto &front = fronts.back();
        for (size_t k = 1; k < front.size(); ++k) {
            double d_gain = front[k].gain - front[k - 1].gain;
            uint64_t d_flash = front[k].flash - front[k - 1].flash;
            steps.push_back(
                {g, k,
                 d_flash == 0 ? std::numeric_limits<double>::infinity()
                              : d_gain / double(d_flash)});
        }
    }
    // Bang-for-buck order. Within one group the concave frontier makes
    // ratios non-increasing, and the (group, level) tiebreak keeps
    // equal-ratio steps of one group in level order, so a step's
    // predecessor level is always reached first.
    std::sort(steps.begin(), steps.end(), [](const Step &a, const Step &b) {
        if (a.ratio != b.ratio)
            return a.ratio > b.ratio;
        if (a.group != b.group)
            return a.group < b.group;
        return a.level < b.level;
    });

    std::vector<size_t> level(instance.groups.size(), 0);
    std::vector<size_t> choice(instance.groups.size(), 0);
    uint64_t usage[kDims] = {0, 0, 0};
    for (const Step &step : steps) {
        if (level[step.group] != step.level - 1)
            continue; // group closed by an earlier unaffordable step
        const Candidate &from =
            instance.groups[step.group]
                .candidates[fronts[step.group][step.level - 1].candidate];
        const Candidate &to =
            instance.groups[step.group]
                .candidates[fronts[step.group][step.level].candidate];
        bool fits = true;
        uint64_t trial[kDims];
        for (size_t d = 0; d < kDims; ++d) {
            trial[d] = usage[d] - costOf(from, d) + costOf(to, d);
            uint64_t cap = budgetOf(instance.budget, d);
            if (cap != kUnlimited && trial[d] > cap)
                fits = false;
        }
        if (!fits) {
            level[step.group] = SIZE_MAX; // skipping breaks the chain
            continue;
        }
        for (size_t d = 0; d < kDims; ++d)
            usage[d] = trial[d];
        level[step.group] = step.level;
        choice[step.group] = fronts[step.group][step.level].candidate;
    }
    Assignment out = evaluateAssignment(instance, std::move(choice));
    CT_ASSERT(feasible(instance, out.choice),
              "budget: greedy assignment violates its own budget");
    return out;
}

BudgetPlan
solve(const Instance &instance, Solver solver, const DpLimits &limits)
{
    CT_SPAN("budget.solve");
    obs::StopwatchUs stopwatch;

    BudgetPlan plan;
    Assignment greedy = greedySolve(instance);
    plan.greedyGain = greedy.gain;
    if (solver == Solver::Greedy) {
        plan.assignment = std::move(greedy);
        plan.solver = "greedy";
    } else {
        ExactResult exact = exactSolve(instance, limits);
        plan.exactRan = exact.accepted;
        if (exact.accepted) {
            plan.exactGain = exact.assignment.gain;
            CT_ASSERT(greedy.gain <= exact.assignment.gain + 1e-9,
                      "budget: greedy gain ", greedy.gain,
                      " exceeds the exact optimum ", exact.assignment.gain);
            if (plan.exactGain > 0.0) {
                plan.optimalityGapPct = 100.0 *
                                        (plan.exactGain - plan.greedyGain) /
                                        plan.exactGain;
            }
            plan.assignment = std::move(exact.assignment);
            plan.solver = "exact";
        } else {
            plan.exactSkipReason = exact.rejectReason;
            plan.assignment = std::move(greedy);
            plan.solver = "greedy";
        }
    }

    // Binding constraints and deferred upgrades, solver-agnostic: a
    // dimension binds when swapping some single group to a
    // higher-gain candidate would overrun it.
    for (size_t g = 0; g < instance.groups.size(); ++g) {
        const auto &cands = instance.groups[g].candidates;
        const Candidate &chosen = cands[plan.assignment.choice[g]];
        if (plan.assignment.choice[g] != 0)
            ++plan.upgrades;
        bool blocked = false;
        for (size_t c = 0; c < cands.size(); ++c) {
            if (cands[c].gain <= chosen.gain)
                continue;
            bool over = false;
            for (size_t d = 0; d < kDims; ++d) {
                uint64_t cap = budgetOf(instance.budget, d);
                if (cap == kUnlimited)
                    continue;
                uint64_t would = plan.assignment.usage.flashBytes;
                if (d == 1)
                    would = plan.assignment.usage.ramBytes;
                else if (d == 2)
                    would = plan.assignment.usage.energyNanojoules;
                would = would - costOf(chosen, d) + costOf(cands[c], d);
                if (would > cap) {
                    over = true;
                    if (d == 0)
                        plan.flashBinding = true;
                    else if (d == 1)
                        plan.ramBinding = true;
                    else
                        plan.energyBinding = true;
                }
            }
            blocked = blocked || over;
        }
        if (blocked)
            ++plan.deferred;
    }

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        size_t candidates = 0;
        for (const Group &group : instance.groups)
            candidates += group.candidates.size();
        m.counter("budget.solves").add(1);
        m.counter("budget.groups").add(instance.groups.size());
        m.counter("budget.candidates").add(candidates);
        m.counter(plan.exactRan ? "budget.exact_accepted"
                                : "budget.exact_rejected")
            .add(1);
        m.counter("budget.upgrades").add(plan.upgrades);
        m.counter("budget.deferred").add(plan.deferred);
        if (plan.flashBinding)
            m.counter("budget.binding_flash").add(1);
        if (plan.ramBinding)
            m.counter("budget.binding_ram").add(1);
        if (plan.energyBinding)
            m.counter("budget.binding_energy").add(1);
        m.gauge("budget.gap_pct").set(plan.optimalityGapPct);
        m.histogram("budget.solve_us").record(stopwatch.elapsedUs());
    }
    return plan;
}

Instance
buildInstance(const ir::Module &module, const sim::LoweredModule &current,
              const sim::CostModel &costs, sim::PredictPolicy policy,
              ir::ProcId entry, const causal::ModuleTheta &theta,
              const ir::ModuleProfile &profile, const BudgetSpec &spec,
              const InstanceOptions &options)
{
    CT_SPAN("budget.build");
    CT_ASSERT(theta.size() == module.procedureCount(),
              "buildInstance: theta covers ", theta.size(),
              " procedures, module has ", module.procedureCount());
    CT_ASSERT(profile.size() == module.procedureCount(),
              "buildInstance: profile covers ", profile.size(),
              " procedures, module has ", module.procedureCount());

    // One engine for the call rates and the baseline; candidate
    // pricing then reuses the layout-invariant visit vectors.
    causal::Engine engine(module, current, costs, policy, entry, theta);

    std::vector<ir::ProcId> procs = options.restrictTo;
    if (procs.empty()) {
        for (ir::ProcId id = 0; id < module.procedureCount(); ++id)
            procs.push_back(id);
    } else {
        std::sort(procs.begin(), procs.end());
        procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
    }

    Instance instance;
    instance.budget = spec;
    instance.baselineCyclesPerEvent = engine.baselineCyclesPerEvent();
    const sim::EnergyModel &energy = options.energy;
    const ReprogramCostModel &reprogram = options.reprogram;
    const double uj_per_cycle =
        energy.cpuActiveUa * energy.supplyVolts / energy.clockHz;

    for (ir::ProcId id : procs) {
        CT_ASSERT(id < module.procedureCount(),
                  "buildInstance: proc#", id, " out of range");
        const ir::Procedure &proc = module.procedure(id);
        const sim::LoweredProc &placed = current.procs[id];
        auto visits = causal::expectedVisits(proc, theta[id]);
        double self_current = causal::placedSelfCyclesPerInvocation(
            proc, placed, costs, policy, theta[id], visits);
        double rate = engine.callRate(id);

        Group group;
        group.proc = id;
        group.name = proc.name();
        Candidate keep;
        keep.name = "keep";
        group.candidates.push_back(std::move(keep));

        // Candidate orders share one Rng per group, seeded by the
        // procedure alone, so instances are identical for any caller
        // thread count (Dfs and ProfileGuided never consult it).
        Rng rng(0x62756467ULL ^ (uint64_t(id) << 17));
        for (layout::LayoutKind kind : options.kinds) {
            Candidate cand;
            cand.name = layout::layoutName(kind);
            cand.order = layout::computeOrder(proc, profile[id], kind, rng);
            auto lowered = sim::lowerProcedure(proc, cand.order);
            double self = causal::placedSelfCyclesPerInvocation(
                proc, lowered, costs, policy, theta[id], visits);
            cand.gainCyclesPerEvent = rate * (self_current - self);
            cand.gainEnergyMicrojoulesPerEvent =
                cand.gainCyclesPerEvent * uj_per_cycle;
            cand.gain = cand.gainCyclesPerEvent +
                        options.energyWeight *
                            cand.gainEnergyMicrojoulesPerEvent;

            cand.flashBytes =
                uint64_t(lowered.codeSlots(proc)) * reprogram.bytesPerSlot;
            size_t moved = 0;
            for (ir::BlockId b = 0; b < proc.blockCount(); ++b)
                moved += lowered.positionOf[b] != placed.positionOf[b];
            cand.ramBytes = reprogram.ramBytesPerProc +
                            reprogram.ramBytesPerMovedBlock * moved;
            uint64_t pages =
                (cand.flashBytes + spec.pageBytes - 1) / spec.pageBytes;
            cand.energyNanojoules = uint64_t(
                reprogram.writeNanojoulesPerByte * double(cand.flashBytes) +
                reprogram.eraseNanojoulesPerPage * double(pages) + 0.5);
            group.candidates.push_back(std::move(cand));
        }
        instance.groups.push_back(std::move(group));
    }

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        m.counter("budget.instances").add(1);
        size_t candidates = 0;
        for (const Group &group : instance.groups)
            candidates += group.candidates.size();
        m.counter("budget.instance_groups").add(instance.groups.size());
        m.counter("budget.instance_candidates").add(candidates);
    }
    return instance;
}

std::vector<sim::BlockOrder>
applyAssignment(const Instance &instance, const Assignment &assignment,
                size_t proc_count)
{
    CT_ASSERT(assignment.choice.size() == instance.groups.size(),
              "applyAssignment: choice covers ", assignment.choice.size(),
              " of ", instance.groups.size(), " groups");
    std::vector<sim::BlockOrder> orders(proc_count);
    for (size_t g = 0; g < instance.groups.size(); ++g) {
        const Group &group = instance.groups[g];
        CT_ASSERT(group.proc < proc_count, "applyAssignment: proc#",
                  group.proc, " out of range");
        if (assignment.choice[g] != 0)
            orders[group.proc] =
                group.candidates[assignment.choice[g]].order;
    }
    return orders;
}

} // namespace ct::budget
