/**
 * @file
 * Fleet driver: N simulated motes running one workload, each shipping
 * its boundary-timing trace through its own seeded lossy channel to a
 * sink that feeds per-(mote, procedure) streaming estimators.
 *
 * Determinism contract (the same one the rest of the library obeys,
 * see exec/thread_pool.hh): every per-mote seed derives from the
 * fleet seed and the mote id alone, each mote's transfer owns its
 * channel, collector, and estimator bank, and results land in
 * index-addressed slots — so any --jobs value, including 1, produces
 * bit-identical FleetResults, which CI checks by diffing the bench
 * CSVs across jobs counts.
 *
 * After the fan-out joins, aggregate channel/collector/estimator
 * counters are exported through ct::obs (when metrics are enabled)
 * under the `net.*` names documented in docs/NETWORK.md.
 */

#ifndef CT_NET_FLEET_HH
#define CT_NET_FLEET_HH

#include <cstdint>
#include <vector>

#include "net/channel.hh"
#include "net/collector.hh"
#include "net/uplink.hh"
#include "tomography/estimator.hh"
#include "workloads/workload.hh"

namespace ct::net {

/** One fleet campaign's knobs. */
struct FleetConfig
{
    size_t motes = 8;
    /** Invocations each mote measures before uploading. */
    size_t invocations = 1'000;
    uint64_t cyclesPerTick = 1;
    uint64_t seed = 1;
    /** Worker threads (0 = auto via CT_JOBS / hardware). */
    size_t jobs = 1;
    size_t mtu = kDefaultMtu;
    ChannelConfig channel;
    UplinkConfig uplink;
    CollectorConfig collector;
    tomography::EstimatorOptions estimator;
};

/** Everything one mote's measure -> ship -> estimate produced. */
struct MoteOutcome
{
    uint16_t mote = 0;
    size_t recordsSent = 0;
    size_t recordsDelivered = 0;
    size_t wireBytes = 0; //!< on-air bytes of one full framed upload
    size_t packets = 0;
    bool complete = false; //!< sink accepted every packet
    uint64_t rounds = 0;
    ChannelStats channel;
    UplinkStats uplink;
    CollectorStats collector;
    uint64_t estObservations = 0;
    uint64_t estOutliers = 0;
    /** Sink-side entry-procedure estimate ([] until records arrive). */
    std::vector<double> sinkTheta;
    /** Ground truth from this mote's own run (evaluation only). */
    std::vector<double> trueTheta;
    /** max |sink theta - truth| over entry branches; the agnostic
     *  prior (0.5) stands in when no records reached the sink. */
    double maxThetaError = 0.0;
};

/** Fleet-wide view plus per-mote detail. */
struct FleetResult
{
    std::vector<MoteOutcome> motes;

    size_t totalRecordsSent() const;
    size_t totalRecordsDelivered() const;
    size_t completeMotes() const;
    /** Worst per-mote maxThetaError. */
    double maxThetaError() const;
    /** Mean of the per-mote maxThetaErrors. */
    double meanThetaError() const;
};

/**
 * Run the whole campaign: simulate each mote (probes on), ship its
 * trace through a fault-injected channel, estimate online at the
 * sink, and score against that mote's ground truth.
 */
FleetResult runFleet(const workloads::Workload &workload,
                     const FleetConfig &config);

} // namespace ct::net

#endif // CT_NET_FLEET_HH
