#include "net/fleet.hh"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/machine.hh"
#include "util/logging.hh"

namespace ct::net {

namespace {

/** Independent seed stream for one mote, from fleet seed + id only. */
struct MoteSeeds
{
    uint64_t sim, inputs, channel;
};

MoteSeeds
seedsFor(uint64_t fleet_seed, uint16_t mote)
{
    uint64_t state = fleet_seed ^ 0x9e3779b97f4a7c15ULL * (uint64_t(mote) + 1);
    MoteSeeds seeds;
    seeds.sim = splitmix64(state);
    seeds.inputs = splitmix64(state);
    seeds.channel = splitmix64(state);
    return seeds;
}

MoteOutcome
runMote(const workloads::Workload &workload,
        const sim::LoweredModule &lowered, const FleetConfig &config,
        uint16_t mote)
{
    MoteOutcome out;
    out.mote = mote;
    MoteSeeds seeds = seedsFor(config.seed, mote);

    // Measure: this mote's own campaign, boundary probes on.
    sim::SimConfig sim_config;
    sim_config.cyclesPerTick = config.cyclesPerTick;
    sim_config.timingProbes = true;
    auto inputs = workload.makeInputs(seeds.inputs);
    sim::Simulator simulator(*workload.module, lowered, sim_config, *inputs,
                             seeds.sim);
    auto run = simulator.run(workload.entry, config.invocations);
    out.recordsSent = run.trace.size();
    out.wireBytes = framedTraceBytes(run.trace, config.mtu);
    out.trueTheta =
        run.profile[workload.entry].branchProbabilities(workload.entryProc());

    // Ship: per-mote channel, collector, and estimator bank, all
    // seeded/keyed by the mote alone — the determinism contract.
    EstimatorBank bank(*workload.module, lowered, sim_config.costs,
                       sim_config.policy, config.cyclesPerTick,
                       config.estimator,
                       2.0 * double(sim_config.costs.timerRead));
    SinkCollector sink(config.collector);
    sink.setRecordSink(bank.sink());
    auto transfer = transferTrace(run.trace, mote, config.mtu, config.channel,
                                  config.uplink, sink, seeds.channel);

    out.packets = transfer.packets;
    out.complete = transfer.complete;
    out.rounds = transfer.rounds;
    out.uplink = transfer.uplink;
    out.channel = transfer.channel;
    out.collector = sink.stats();
    out.recordsDelivered = sink.recordsDelivered(mote);
    out.estObservations = bank.observations();
    out.estOutliers = bank.outliers();
    out.sinkTheta = bank.theta(mote, workload.entry);

    // Score the sink's view against this mote's ground truth; before
    // any record arrives the sink's implicit estimate is the agnostic
    // prior, so starvation shows up as error toward 0.5.
    for (size_t b = 0; b < out.trueTheta.size(); ++b) {
        double estimate = b < out.sinkTheta.size() ? out.sinkTheta[b] : 0.5;
        out.maxThetaError = std::max(out.maxThetaError,
                                     std::abs(estimate - out.trueTheta[b]));
    }
    return out;
}

} // namespace

size_t
FleetResult::totalRecordsSent() const
{
    size_t total = 0;
    for (const auto &mote : motes)
        total += mote.recordsSent;
    return total;
}

size_t
FleetResult::totalRecordsDelivered() const
{
    size_t total = 0;
    for (const auto &mote : motes)
        total += mote.recordsDelivered;
    return total;
}

size_t
FleetResult::completeMotes() const
{
    size_t total = 0;
    for (const auto &mote : motes)
        total += mote.complete ? 1 : 0;
    return total;
}

double
FleetResult::maxThetaError() const
{
    double worst = 0.0;
    for (const auto &mote : motes)
        worst = std::max(worst, mote.maxThetaError);
    return worst;
}

double
FleetResult::meanThetaError() const
{
    if (motes.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &mote : motes)
        total += mote.maxThetaError;
    return total / double(motes.size());
}

FleetResult
runFleet(const workloads::Workload &workload, const FleetConfig &config)
{
    CT_SPAN("net.fleet");
    CT_ASSERT(workload.module != nullptr, "fleet workload has no module");
    CT_ASSERT(config.motes > 0 && config.motes <= 0xffff,
              "fleet size must lie in [1, 65535]");
    obs::StopwatchUs watch;

    // Lower once; every mote shares the placed module read-only.
    auto lowered = sim::lowerModule(*workload.module);

    FleetResult result;
    exec::ThreadPool pool(config.jobs);
    result.motes =
        exec::parallelMap(pool, config.motes, [&](size_t index) {
            // Mote ids are 1-based: id 0 is reserved for single-mote
            // uses (e.g. the pipeline transport stage's default).
            return runMote(workload, lowered, config,
                           uint16_t(index + 1));
        });

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        uint64_t sent = 0, resent = 0, dropped = 0, duplicated = 0,
                 corrupted = 0, rejected = 0, deduped = 0, delivered = 0,
                 observations = 0, outliers = 0;
        for (const auto &mote : result.motes) {
            sent += mote.uplink.transmissions;
            resent += mote.uplink.retransmissions;
            dropped += mote.channel.dropped;
            duplicated += mote.channel.duplicated;
            corrupted += mote.channel.corrupted;
            rejected += mote.collector.rejected;
            deduped += mote.collector.duplicates;
            delivered += mote.collector.recordsDelivered;
            observations += mote.estObservations;
            outliers += mote.estOutliers;
        }
        m.counter("net.packets_sent").add(sent);
        m.counter("net.packets_retransmitted").add(resent);
        m.counter("net.packets_dropped").add(dropped);
        m.counter("net.packets_duplicated").add(duplicated);
        m.counter("net.packets_corrupted").add(corrupted);
        m.counter("net.packets_crc_rejected").add(rejected);
        m.counter("net.packets_deduped").add(deduped);
        m.counter("net.records_delivered").add(delivered);
        m.counter("net.estimator.observations").add(observations);
        m.counter("net.estimator.outliers").add(outliers);
        m.counter("net.motes_complete").add(result.completeMotes());
        m.histogram("net.fleet_us").record(watch.elapsedUs());
    }
    return result;
}

} // namespace ct::net
