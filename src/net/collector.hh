/**
 * @file
 * Sink-side collection: from raw radio frames to in-order timing
 * records feeding online estimators.
 *
 * The SinkCollector is the receiving half of the paper's deployment
 * story. Per mote it validates CRCs (corrupted frames are counted and
 * discarded, never decoded), dedupes by sequence number, buffers
 * out-of-order packets, and releases payloads strictly in sequence
 * order; each released payload decodes into timing records that are
 * appended to the mote's reassembled trace and handed to the record
 * sink. When a gap refuses to close (its packet exhausted its
 * retransmit budget), a bounded skip-ahead gives up on the missing
 * sequence numbers so collection degrades to "fewer samples" instead
 * of stalling forever — payloads are self-contained (net/packet.hh),
 * so skipping never desynchronizes decoding.
 *
 * The EstimatorBank is the standard record sink: one
 * StreamingEstimator per (mote, procedure), created on first record,
 * sharing one TimingModel per procedure across motes. Sink state is
 * O(paths + branches) per active (mote, procedure) pair — exactly the
 * footprint argument the paper makes for estimation-based profiling.
 */

#ifndef CT_NET_COLLECTOR_HH
#define CT_NET_COLLECTOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "net/packet.hh"
#include "store/store.hh"
#include "tomography/streaming.hh"
#include "trace/timing_trace.hh"

namespace ct::net {

/** Collector knobs. */
struct CollectorConfig
{
    /**
     * Give up on a gap once this many later packets are buffered
     * behind it (0 = never skip: wait forever / until finalize()).
     */
    size_t skipAheadPackets = 32;
    /**
     * When non-empty, open a ct::store::Store at this directory and
     * append every delivered record to its WAL: a sink process that
     * crashes can then be reopened on the same directory and resume
     * from the durable prefix (see resumeBank()).
     */
    std::string storeDir;
    /** Durability knobs, honored only when storeDir is set. */
    store::StoreConfig store;
    /**
     * Keep each mote's reassembled in-order trace (traceFor()). The
     * default suits interactive analysis; a fleet-scale sink turns it
     * off so per-mote memory stays O(reorder window + estimator
     * state) instead of O(records) — estimators, the WAL, and the
     * stats all still see every record.
     */
    bool retainTraces = true;
};

/** Sink-side accounting. */
struct CollectorStats
{
    uint64_t framesOffered = 0;
    /** CRC / header validation failures (corrupt on-air frames). */
    uint64_t rejected = 0;
    /** CRC-clean frames whose payload failed to decode (should stay
     *  0 against an honest encoder; counted, never trusted). */
    uint64_t malformedPayloads = 0;
    /** Redeliveries of an already-received sequence number. */
    uint64_t duplicates = 0;
    /** Frames that arrived after their gap had been skipped. */
    uint64_t stale = 0;
    /** Distinct valid packets accepted (delivered or buffered). */
    uint64_t accepted = 0;
    /** Sequence numbers abandoned by skip-ahead. */
    uint64_t skippedPackets = 0;
    /** Timing records released in order to the record sink. */
    uint64_t recordsDelivered = 0;
};

/** Cumulative + selective acknowledgement for one mote's stream. */
struct Ack
{
    uint16_t mote = 0;
    /** All sequence numbers below this need no (re)transmission. */
    uint32_t nextExpected = 0;
    /** Out-of-order packets already held at the sink. */
    std::vector<uint32_t> selective;
};

class SinkCollector
{
  public:
    /** Called once per completed record, in per-mote stream order. */
    using RecordSink =
        std::function<void(uint16_t mote, const trace::TimingRecord &)>;

    explicit SinkCollector(const CollectorConfig &config = {});

    void setRecordSink(RecordSink sink) { sink_ = std::move(sink); }

    /**
     * Offer one on-air frame. Returns the mote's current ack state,
     * or nullopt when the frame failed validation (a corrupt frame
     * cannot even be attributed to a mote).
     */
    std::optional<Ack> offer(const std::vector<uint8_t> &frame);

    /** Same, over a raw byte span (zero-copy ingest from a frame
     *  arena; see parsePacket(const uint8_t*, size_t, Packet&)). */
    std::optional<Ack> offer(const uint8_t *frame, size_t size);

    /**
     * End of a mote's transfer: release everything still buffered, in
     * sequence order, accepting the remaining gaps as lost.
     */
    void finalize(uint16_t mote);

    /**
     * finalize(@p mote), then drop its per-mote state (reorder
     * buffers, dedupe set, trace, counters). The fleet ingest loop
     * calls this after each mote's transfer so collector memory tracks
     * the motes *in flight*, not every mote ever seen. Global stats()
     * keep counting the evicted mote's traffic; the per-mote accessors
     * (packetsAccepted, recordsDelivered, traceFor) forget it, and a
     * straggler frame arriving afterwards reopens fresh state — at
     * seq 0, so post-eviction traffic is effectively dropped by the
     * dedupe/stale rules, same as any stale frame.
     */
    void evictMote(uint16_t mote);

    /** Distinct valid packets accepted so far for @p mote. */
    size_t packetsAccepted(uint16_t mote) const;

    /** Records released so far for @p mote. */
    uint64_t recordsDelivered(uint16_t mote) const;

    /** Reassembled in-order trace for @p mote (empty if unseen or
     *  when CollectorConfig::retainTraces is off). Invocation indices
     *  are assigned per (mote, procedure) in delivery order —
     *  identical to the mote's own numbering when nothing was lost. */
    const trace::TimingTrace &traceFor(uint16_t mote) const;

    /** Motes seen so far, ascending. */
    std::vector<uint16_t> motes() const;

    /** The durable store, or nullptr when storeDir was empty. */
    store::Store *store() { return store_.get(); }
    const store::Store *store() const { return store_.get(); }

    const CollectorStats &stats() const { return stats_; }

  private:
    struct MoteState
    {
        uint32_t nextExpected = 0;
        std::map<uint32_t, std::vector<uint8_t>> pending;
        std::set<uint32_t> received;
        size_t accepted = 0;
        uint64_t records = 0;
        std::vector<uint64_t> invocations;
        trace::TimingTrace trace;
    };

    void deliver(uint16_t mote, MoteState &state,
                 const std::vector<uint8_t> &payload);
    void drainPending(uint16_t mote, MoteState &state);
    Ack ackFor(uint16_t mote, const MoteState &state) const;

    CollectorConfig config_;
    CollectorStats stats_;
    RecordSink sink_;
    std::unique_ptr<store::Store> store_;
    std::map<uint16_t, MoteState> motes_;
};

/**
 * Per-(mote, procedure) online estimation at the sink. Timing models
 * are built once per procedure (callee bodies at zero mean — the sink
 * estimates each procedure in isolation, the same convention as
 * direct StreamingEstimator use); estimators are created lazily on
 * the first record of a (mote, procedure) pair.
 */
class EstimatorBank
{
  public:
    /**
     * @param nested_probe_cycles see tomography::TimingModel.
     * @param step_exponent / @param forgetting forwarded to every
     *        StreamingEstimator the bank creates (see its ctor): a
     *        forgetting-mode bank tracks nonstationary workloads, the
     *        continuous-PGO loop's configuration. Recovery replay
     *        (resumeBank) must rebuild the bank with the *same*
     *        parameters or the replayed states diverge bitwise.
     */
    EstimatorBank(const ir::Module &module,
                  const sim::LoweredModule &lowered,
                  const sim::CostModel &costs, sim::PredictPolicy policy,
                  uint64_t cycles_per_tick,
                  const tomography::EstimatorOptions &options = {},
                  double nested_probe_cycles = 0.0,
                  double step_exponent = 0.7, double forgetting = 0.0);

    /** Fold one delivered record in. */
    void observe(uint16_t mote, const trace::TimingRecord &record);

    /** Adapter for SinkCollector::setRecordSink. */
    SinkCollector::RecordSink sink()
    {
        return [this](uint16_t mote, const trace::TimingRecord &record) {
            observe(mote, record);
        };
    }

    /** The (mote, proc) estimator, or nullptr before its first record. */
    const tomography::StreamingEstimator *find(uint16_t mote,
                                               ir::ProcId proc) const;

    /** Current theta of (mote, proc); empty before the first record. */
    std::vector<double> theta(uint16_t mote, ir::ProcId proc) const;

    /// @name Totals across every estimator in the bank
    /// @{
    uint64_t observations() const;
    uint64_t outliers() const;
    /// @}

    /** Records whose proc id was outside the module (dropped). */
    uint64_t unknownProcRecords() const { return unknownProc_; }

    /// @name Durability (ct::store integration)
    /// @{
    /**
     * Checkpoint every estimator's state, sorted by (mote, proc) so
     * the encoding is deterministic. Feed to Store::writeCheckpoint.
     */
    std::vector<store::EstimatorSlot> snapshot() const;
    /**
     * Restore one (mote, proc) estimator to a checkpointed state,
     * creating it if needed. Because StreamingEstimator::restore is
     * exact, a bank restored from a snapshot continues bit-for-bit
     * like the bank that produced it.
     */
    void restoreSlot(uint16_t mote, ir::ProcId proc,
                     const tomography::StreamingState &state);
    /**
     * Fold one (mote, proc) state in with merge semantics (see
     * StreamingEstimator::mergeFrom): creates the estimator when
     * absent — then exact, identical to restoreSlot — and merges
     * states when both sides hold observations.
     */
    void mergeSlot(uint16_t mote, ir::ProcId proc,
                   const tomography::StreamingState &state);
    /**
     * Fold every estimator of @p other in via mergeSlot. When the two
     * banks cover *disjoint* (mote, proc) sets — which mote-range
     * sharding guarantees — the merge is exact: the result is bitwise
     * the bank an unsharded run over the union stream would hold, and
     * the operation is associative and commutative (property-tested
     * in tests/prop_fleet_merge.cc). unknownProcRecords() adds.
     */
    void mergeFrom(const EstimatorBank &other);
    /// @}

    /** Estimators currently held (one per active (mote, proc)). */
    size_t estimatorCount() const { return estimators_.size(); }

  private:
    tomography::StreamingEstimator &estimatorFor(uint16_t mote,
                                                 ir::ProcId proc);

    const ir::Module *module_;
    tomography::EstimatorOptions options_;
    double stepExponent_ = 0.7;
    double forgetting_ = 0.0;
    std::vector<std::unique_ptr<tomography::TimingModel>> models_;
    /**
     * Latent path tables, one per procedure, built on the first
     * estimator that needs them and shared by every mote's estimator
     * of that procedure — at fleet scale the dominant setup cost and
     * footprint win (see tomography::PathTable).
     */
    std::vector<std::shared_ptr<const tomography::PathTable>> tables_;
    std::map<std::pair<uint16_t, ir::ProcId>,
             std::unique_ptr<tomography::StreamingEstimator>>
        estimators_;
    uint64_t unknownProc_ = 0;
};

/**
 * Rebuild @p bank from @p store's recovered state: restore every
 * checkpoint slot, then replay the durable WAL tail in order. After
 * this, @p bank equals the bank of an uninterrupted run over the
 * store's durable record prefix.
 */
void resumeBank(const store::Store &store, EstimatorBank &bank);

} // namespace ct::net

#endif // CT_NET_COLLECTOR_HH
