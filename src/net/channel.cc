#include "net/channel.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace ct::net {

LossyChannel::LossyChannel(const ChannelConfig &config, uint64_t seed)
    : config_(config), rng_(seed)
{
    auto probability = [](double p, const char *name) {
        if (p < 0.0 || p > 1.0)
            fatal("net: channel ", name, " must lie in [0, 1], got ", p);
    };
    probability(config.dropRate, "dropRate");
    probability(config.duplicateRate, "duplicateRate");
    probability(config.bitFlipRate, "bitFlipRate");
    probability(config.burstEnterProb, "burstEnterProb");
    probability(config.burstExitProb, "burstExitProb");
    probability(config.burstDropRate, "burstDropRate");
    probability(config.ackDropRate, "ackDropRate");
}

void
LossyChannel::send(const std::vector<uint8_t> &frame)
{
    ++stats_.offered;

    // Gilbert-Elliott state steps once per offered frame, whether or
    // not this frame survives — burst lengths are measured in frames.
    if (config_.burstLoss) {
        if (badState_)
            badState_ = !rng_.bernoulli(config_.burstExitProb);
        else
            badState_ = rng_.bernoulli(config_.burstEnterProb);
    }
    double drop = config_.burstLoss && badState_ ? config_.burstDropRate
                                                 : config_.dropRate;
    if (rng_.bernoulli(drop)) {
        ++stats_.dropped;
        return;
    }

    std::vector<uint8_t> copy = frame;
    if (!copy.empty() && rng_.bernoulli(config_.bitFlipRate)) {
        ++stats_.corrupted;
        // 1-3 *distinct* bit positions: flipping the same bit twice
        // would cancel out and deliver an intact frame counted as
        // corrupted. Distinct flips of weight <= 3 in a <= MTU-sized
        // frame are always caught by the CRC (odd weights because the
        // polynomial has (x+1) as a factor, doubles because the frame
        // is far shorter than the code's 32767-bit period).
        size_t flips = 1 + rng_.below(3);
        std::vector<size_t> chosen;
        while (chosen.size() < flips) {
            size_t bit = rng_.below(copy.size() * 8);
            if (std::find(chosen.begin(), chosen.end(), bit) !=
                chosen.end()) {
                continue;
            }
            chosen.push_back(bit);
            copy[bit / 8] ^= uint8_t(1u << (bit % 8));
        }
    }

    bool duplicate = rng_.bernoulli(config_.duplicateRate);
    if (duplicate) {
        ++stats_.duplicated;
        enqueue(copy);
    }
    enqueue(std::move(copy));
}

void
LossyChannel::enqueue(std::vector<uint8_t> frame)
{
    InFlight entry;
    entry.due = now_ + rng_.below(config_.reorderWindow + 1);
    entry.order = order_++;
    entry.frame = std::move(frame);
    inflight_.push_back(std::move(entry));
}

std::vector<std::vector<uint8_t>>
LossyChannel::take(uint64_t due_limit)
{
    std::vector<InFlight> due;
    auto split = std::partition(inflight_.begin(), inflight_.end(),
                                [&](const InFlight &entry) {
                                    return entry.due > due_limit;
                                });
    due.insert(due.end(), std::make_move_iterator(split),
               std::make_move_iterator(inflight_.end()));
    inflight_.erase(split, inflight_.end());
    std::sort(due.begin(), due.end(), [](const InFlight &a, const InFlight &b) {
        return a.due != b.due ? a.due < b.due : a.order < b.order;
    });
    std::vector<std::vector<uint8_t>> out;
    out.reserve(due.size());
    for (auto &entry : due)
        out.push_back(std::move(entry.frame));
    stats_.delivered += out.size();
    return out;
}

std::vector<std::vector<uint8_t>>
LossyChannel::drain()
{
    return take(now_);
}

std::vector<std::vector<uint8_t>>
LossyChannel::flush()
{
    return take(std::numeric_limits<uint64_t>::max());
}

bool
LossyChannel::ackSurvives()
{
    if (rng_.bernoulli(config_.ackDropRate)) {
        ++stats_.acksDropped;
        return false;
    }
    return true;
}

} // namespace ct::net
