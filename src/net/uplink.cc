#include "net/uplink.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ct::net {

MoteUplink::MoteUplink(std::vector<Packet> packets,
                       const UplinkConfig &config)
    : config_(config)
{
    CT_ASSERT(config.window > 0, "uplink window must be positive");
    slots_.reserve(packets.size());
    for (auto &packet : packets) {
        Slot slot;
        slot.packet = std::move(packet);
        slot.backoff = std::max<uint64_t>(1, config.backoffRounds);
        slots_.push_back(std::move(slot));
    }
}

std::vector<Packet>
MoteUplink::poll(uint64_t round)
{
    while (base_ < slots_.size() && slots_[base_].finished())
        ++base_;

    // Classic selective-repeat: the window is anchored at the lowest
    // unfinished sequence number. Nothing past base_ + window - 1 is
    // ever offered, which bounds the sink's out-of-order buffer to
    // window - 1 packets — so (with skipAheadPackets > window) the
    // collector's skip-ahead can only ever fire for packets this
    // sender has actually abandoned, never for one it still intends
    // to retransmit. That invariant is what makes "retransmits on,
    // loss < 1" imply byte-identical reassembly.
    std::vector<Packet> out;
    for (size_t i = base_;
         i < slots_.size() && i < base_ + config_.window; ++i) {
        Slot &slot = slots_[i];
        if (slot.finished())
            continue;
        if (slot.nextAttempt > round)
            continue;
        if (slot.attempts > config_.maxRetries) {
            // Budget exhausted: abandon; the sink's skip-ahead will
            // resume the stream past this sequence number.
            slot.abandoned = true;
            ++stats_.giveUps;
            continue;
        }
        ++slot.attempts;
        ++stats_.transmissions;
        if (slot.attempts > 1)
            ++stats_.retransmissions;
        slot.nextAttempt = round + slot.backoff;
        slot.backoff = std::min(slot.backoff * 2, config_.maxBackoffRounds);
        out.push_back(slot.packet);
        if (!config_.retransmit)
            slot.abandoned = true; // fire-and-forget: one shot each
    }
    return out;
}

void
MoteUplink::onAck(const Ack &ack)
{
    ++stats_.acksHeard;
    for (Slot &slot : slots_) {
        if (slot.acked)
            continue;
        if (slot.packet.seq < ack.nextExpected)
            slot.acked = true;
    }
    for (uint32_t seq : ack.selective) {
        if (seq < slots_.size() && !slots_[seq].acked)
            slots_[seq].acked = true;
    }
}

bool
MoteUplink::done() const
{
    for (size_t i = base_; i < slots_.size(); ++i) {
        if (!slots_[i].finished())
            return false;
    }
    return true;
}

bool
MoteUplink::complete() const
{
    return std::all_of(slots_.begin(), slots_.end(),
                       [](const Slot &slot) { return slot.acked; });
}

TransferOutcome
transferTrace(const trace::TimingTrace &trace, uint16_t mote, size_t mtu,
              const ChannelConfig &channel_config,
              const UplinkConfig &uplink_config, SinkCollector &sink,
              uint64_t seed)
{
    auto packets = packetizeTrace(trace, mote, mtu);
    TransferOutcome out;
    out.packets = packets.size();

    MoteUplink uplink(std::move(packets), uplink_config);
    LossyChannel channel(channel_config, seed);

    uint64_t round = 0;
    while (!uplink.done() && round < uplink_config.maxRounds) {
        channel.advance();
        for (const Packet &packet : uplink.poll(round))
            channel.send(serializePacket(packet));
        for (const auto &frame : channel.drain()) {
            auto ack = sink.offer(frame);
            if (ack && channel.ackSurvives())
                uplink.onAck(*ack);
        }
        ++round;
    }
    // Delayed frames still in flight when the sender stopped.
    for (const auto &frame : channel.flush())
        sink.offer(frame);
    sink.finalize(mote);

    out.rounds = round;
    out.uplink = uplink.stats();
    out.channel = channel.stats();
    out.complete = sink.packetsAccepted(mote) == out.packets;
    return out;
}

} // namespace ct::net
