/**
 * @file
 * Radio packet layer: frames chunks of the LEB128 wire format
 * (trace/wire_format.hh) for transmission over a lossy mote-to-sink
 * link.
 *
 * Each packet carries a fixed header — mote id, a monotonically
 * increasing sequence number, the payload length, and a CRC-16 over
 * everything else — followed by up to (mtu - kHeaderBytes) payload
 * bytes. Payloads are *self-contained*: packetizeTrace() restarts the
 * delta-encoding basis at every packet boundary and never splits a
 * record across packets, so a packet lost beyond recovery costs
 * exactly its own records and the collector can resume at the next
 * sequence number without desynchronizing the varint stream.
 *
 * The framing overhead (headers plus the per-packet delta restart) is
 * part of the radio cost story: bytesPerRecordFramed() reports real
 * on-air bytes per record, which the E7 overhead experiment uses
 * instead of the raw stream figure.
 */

#ifndef CT_NET_PACKET_HH
#define CT_NET_PACKET_HH

#include <cstdint>
#include <vector>

#include "trace/timing_trace.hh"
#include "util/crc16.hh"

namespace ct::net {

/**
 * CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF, no reflection).
 * Check value: crc16 over "123456789" == 0x29B1. Detects all
 * single-bit errors and any burst up to 16 bits — the corruption
 * modes the channel simulator injects. The implementation lives in
 * util/crc16.hh so the durable store's on-disk framing shares it.
 */
using ct::crc16;

/** On-air header bytes: mote(2) + seq(4) + len(2) + crc(2). */
constexpr size_t kHeaderBytes = 10;

/**
 * Default radio MTU (whole frame, header included). Sized like an
 * 802.15.4 payload budget and large enough that any single record —
 * worst-case three varints under the wire-format caps — always fits.
 */
constexpr size_t kDefaultMtu = 40;

/** One framed radio packet (payload stored decoded, CRC checked). */
struct Packet
{
    uint16_t mote = 0;
    uint32_t seq = 0;
    std::vector<uint8_t> payload;
};

/** Serialize to on-air bytes: header (little-endian) + payload. */
std::vector<uint8_t> serializePacket(const Packet &packet);

/**
 * Parse and validate an on-air frame.
 * @retval false on short frames, length mismatches, or CRC failure —
 *         a corrupted frame is never silently decoded.
 */
bool parsePacket(const std::vector<uint8_t> &frame, Packet &out);

/**
 * Same, over a raw byte span — the zero-copy ingest path. A fleet
 * frontend holding pre-framed bytes in a flat arena (bench/fleet, the
 * sharded collector) validates and decodes straight out of the arena;
 * only the accepted payload is copied (into Packet::payload).
 */
bool parsePacket(const uint8_t *frame, size_t size, Packet &out);

/**
 * Split @p trace into radio packets for @p mote. Sequence numbers
 * start at 0; every payload decodes independently (see file
 * comment). fatal() when @p mtu cannot fit the header plus one
 * worst-case record.
 *
 * @note Premise found by property fuzzing (tests/prop_packet_net.cc):
 *       because every payload restarts the delta basis at 0, a
 *       packet's first record is encoded at its *absolute* start
 *       tick, so the trace must satisfy |startTick| <=
 *       trace::kMaxWireTicks (~2^40 ticks) or the hardened decoder
 *       will reject the payload. Motes that run longer than the cap
 *       must renormalize their tick epoch before packetizing.
 */
std::vector<Packet> packetizeTrace(const trace::TimingTrace &trace,
                                   uint16_t mote,
                                   size_t mtu = kDefaultMtu);

/**
 * Decode the records of one self-contained packet payload, appending
 * to @p out with invocation indices left 0 (the collector assigns
 * them per mote).
 * @retval false when the payload is truncated or malformed — on a
 *         CRC-validated packet from an honest encoder this cannot
 *         happen, so collectors count it separately from corruption.
 */
bool decodePayload(const std::vector<uint8_t> &payload,
                   std::vector<trace::TimingRecord> &out);

/** Total on-air bytes to ship @p trace at @p mtu (headers included). */
size_t framedTraceBytes(const trace::TimingTrace &trace,
                        size_t mtu = kDefaultMtu);

/**
 * Average on-air bytes per record *including* packet framing (headers
 * and per-packet delta restarts) — the honest radio cost, always >=
 * trace::bytesPerRecord(). 0 for an empty trace.
 */
double bytesPerRecordFramed(const trace::TimingTrace &trace,
                            size_t mtu = kDefaultMtu);

} // namespace ct::net

#endif // CT_NET_PACKET_HH
