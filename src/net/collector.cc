#include "net/collector.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ct::net {

SinkCollector::SinkCollector(const CollectorConfig &config) : config_(config)
{
    if (!config_.storeDir.empty())
        store_ = std::make_unique<store::Store>(config_.storeDir,
                                                config_.store);
}

std::optional<Ack>
SinkCollector::offer(const std::vector<uint8_t> &frame)
{
    return offer(frame.data(), frame.size());
}

std::optional<Ack>
SinkCollector::offer(const uint8_t *frame, size_t size)
{
    ++stats_.framesOffered;
    Packet packet;
    if (!parsePacket(frame, size, packet)) {
        ++stats_.rejected;
        return std::nullopt;
    }

    MoteState &state = motes_[packet.mote];
    if (state.received.count(packet.seq)) {
        ++stats_.duplicates;
        return ackFor(packet.mote, state);
    }
    if (packet.seq < state.nextExpected) {
        // Its gap was skipped; delivering now would reorder records.
        ++stats_.stale;
        return ackFor(packet.mote, state);
    }

    state.received.insert(packet.seq);
    ++state.accepted;
    ++stats_.accepted;

    if (packet.seq == state.nextExpected) {
        deliver(packet.mote, state, packet.payload);
        ++state.nextExpected;
        drainPending(packet.mote, state);
    } else {
        state.pending.emplace(packet.seq, std::move(packet.payload));
        if (config_.skipAheadPackets > 0 &&
            state.pending.size() > config_.skipAheadPackets) {
            // The gap's packet has evidently exhausted its retransmit
            // budget: abandon the missing sequence numbers and resume
            // at the earliest buffered packet.
            uint32_t resume = state.pending.begin()->first;
            stats_.skippedPackets += resume - state.nextExpected;
            state.nextExpected = resume;
            drainPending(packet.mote, state);
        }
    }
    return ackFor(packet.mote, state);
}

void
SinkCollector::deliver(uint16_t mote, MoteState &state,
                       const std::vector<uint8_t> &payload)
{
    std::vector<trace::TimingRecord> records;
    if (!decodePayload(payload, records)) {
        // CRC-clean yet undecodable: count it, trust nothing from it.
        ++stats_.malformedPayloads;
        return;
    }
    for (auto &record : records) {
        if (state.invocations.size() <= record.proc)
            state.invocations.resize(record.proc + 1, 0);
        record.invocation = state.invocations[record.proc]++;
        if (config_.retainTraces)
            state.trace.add(record);
        ++state.records;
        ++stats_.recordsDelivered;
        // WAL before sink: a record the estimators saw is always at
        // least buffered for durability (group-commit bounds the loss
        // window, Store::flush closes it).
        if (store_)
            store_->append(mote, record);
        if (sink_)
            sink_(mote, record);
    }
}

void
SinkCollector::drainPending(uint16_t mote, MoteState &state)
{
    auto it = state.pending.begin();
    while (it != state.pending.end() && it->first == state.nextExpected) {
        deliver(mote, state, it->second);
        ++state.nextExpected;
        it = state.pending.erase(it);
    }
}

void
SinkCollector::finalize(uint16_t mote)
{
    auto found = motes_.find(mote);
    if (found == motes_.end())
        return;
    MoteState &state = found->second;
    while (!state.pending.empty()) {
        uint32_t resume = state.pending.begin()->first;
        if (resume > state.nextExpected)
            stats_.skippedPackets += resume - state.nextExpected;
        state.nextExpected = resume;
        drainPending(mote, state);
    }
    if (store_)
        store_->flush();
}

void
SinkCollector::evictMote(uint16_t mote)
{
    finalize(mote);
    motes_.erase(mote);
}

Ack
SinkCollector::ackFor(uint16_t mote, const MoteState &state) const
{
    Ack ack;
    ack.mote = mote;
    ack.nextExpected = state.nextExpected;
    ack.selective.reserve(state.pending.size());
    for (const auto &[seq, payload] : state.pending)
        ack.selective.push_back(seq);
    return ack;
}

size_t
SinkCollector::packetsAccepted(uint16_t mote) const
{
    auto found = motes_.find(mote);
    return found == motes_.end() ? 0 : found->second.accepted;
}

uint64_t
SinkCollector::recordsDelivered(uint16_t mote) const
{
    auto found = motes_.find(mote);
    return found == motes_.end() ? 0 : found->second.records;
}

const trace::TimingTrace &
SinkCollector::traceFor(uint16_t mote) const
{
    static const trace::TimingTrace kEmpty;
    auto found = motes_.find(mote);
    return found == motes_.end() ? kEmpty : found->second.trace;
}

std::vector<uint16_t>
SinkCollector::motes() const
{
    std::vector<uint16_t> out;
    out.reserve(motes_.size());
    for (const auto &[mote, state] : motes_)
        out.push_back(mote);
    return out;
}

EstimatorBank::EstimatorBank(const ir::Module &module,
                             const sim::LoweredModule &lowered,
                             const sim::CostModel &costs,
                             sim::PredictPolicy policy,
                             uint64_t cycles_per_tick,
                             const tomography::EstimatorOptions &options,
                             double nested_probe_cycles,
                             double step_exponent, double forgetting)
    : module_(&module), options_(options), stepExponent_(step_exponent),
      forgetting_(forgetting)
{
    std::vector<double> no_callees(module.procedureCount(), 0.0);
    models_.reserve(module.procedureCount());
    for (ir::ProcId id = 0; id < module.procedureCount(); ++id) {
        models_.push_back(std::make_unique<tomography::TimingModel>(
            module.procedure(id), lowered.procs[id], costs, policy,
            cycles_per_tick, no_callees, nested_probe_cycles));
    }
    tables_.resize(module.procedureCount());
}

tomography::StreamingEstimator &
EstimatorBank::estimatorFor(uint16_t mote, ir::ProcId proc)
{
    auto key = std::make_pair(mote, proc);
    auto found = estimators_.find(key);
    if (found == estimators_.end()) {
        // One path table per procedure, enumerated on the procedure's
        // first estimator and shared by every later mote.
        if (!tables_[proc])
            tables_[proc] =
                tomography::PathTable::build(*models_[proc], options_);
        found = estimators_
                    .emplace(key,
                             std::make_unique<tomography::StreamingEstimator>(
                                 *models_[proc], tables_[proc], options_,
                                 stepExponent_, forgetting_))
                    .first;
    }
    return *found->second;
}

void
EstimatorBank::observe(uint16_t mote, const trace::TimingRecord &record)
{
    if (record.proc >= models_.size()) {
        ++unknownProc_;
        return;
    }
    estimatorFor(mote, record.proc).observe(record.durationTicks());
}

const tomography::StreamingEstimator *
EstimatorBank::find(uint16_t mote, ir::ProcId proc) const
{
    auto found = estimators_.find(std::make_pair(mote, proc));
    return found == estimators_.end() ? nullptr : found->second.get();
}

std::vector<double>
EstimatorBank::theta(uint16_t mote, ir::ProcId proc) const
{
    const auto *estimator = find(mote, proc);
    return estimator ? estimator->theta() : std::vector<double>{};
}

uint64_t
EstimatorBank::observations() const
{
    uint64_t total = 0;
    for (const auto &[key, estimator] : estimators_)
        total += estimator->observations();
    return total;
}

uint64_t
EstimatorBank::outliers() const
{
    uint64_t total = 0;
    for (const auto &[key, estimator] : estimators_)
        total += estimator->outliers();
    return total;
}

std::vector<store::EstimatorSlot>
EstimatorBank::snapshot() const
{
    std::vector<store::EstimatorSlot> slots;
    slots.reserve(estimators_.size());
    // estimators_ is an ordered map keyed by (mote, proc), so the
    // slot order — and therefore the checkpoint encoding — is already
    // deterministic.
    for (const auto &[key, estimator] : estimators_) {
        store::EstimatorSlot slot;
        slot.mote = key.first;
        slot.proc = key.second;
        slot.state = estimator->snapshot();
        slots.push_back(std::move(slot));
    }
    return slots;
}

void
EstimatorBank::restoreSlot(uint16_t mote, ir::ProcId proc,
                           const tomography::StreamingState &state)
{
    if (proc >= models_.size()) {
        // A checkpoint written against a different module build; the
        // same policy as observe(): count it, restore nothing.
        ++unknownProc_;
        return;
    }
    estimatorFor(mote, proc).restore(state);
}

void
EstimatorBank::mergeSlot(uint16_t mote, ir::ProcId proc,
                         const tomography::StreamingState &state)
{
    if (proc >= models_.size()) {
        ++unknownProc_;
        return;
    }
    estimatorFor(mote, proc).mergeFrom(state);
}

void
EstimatorBank::mergeFrom(const EstimatorBank &other)
{
    for (const auto &[key, estimator] : other.estimators_)
        mergeSlot(key.first, key.second, estimator->snapshot());
    unknownProc_ += other.unknownProc_;
}

void
resumeBank(const store::Store &store, EstimatorBank &bank)
{
    store.replayInto(
        [&](const store::EstimatorSlot &slot) {
            bank.restoreSlot(slot.mote, slot.proc, slot.state);
        },
        [&](uint16_t mote, const trace::TimingRecord &record) {
            bank.observe(mote, record);
        });
}

} // namespace ct::net
