#include "net/packet.hh"

#include "trace/wire_format.hh"
#include "util/logging.hh"

namespace ct::net {

namespace {

/** Worst-case encoded record: three varints under the wire caps
 *  (proc <= 3 bytes, gap/duration <= 6 bytes zigzag/varint each,
 *  plus slack for the sign bit). */
constexpr size_t kMaxRecordBytes = 16;

void
put16(std::vector<uint8_t> &out, uint16_t value)
{
    out.push_back(uint8_t(value & 0xff));
    out.push_back(uint8_t(value >> 8));
}

void
put32(std::vector<uint8_t> &out, uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(uint8_t(value >> shift));
}

} // namespace

std::vector<uint8_t>
serializePacket(const Packet &packet)
{
    CT_ASSERT(packet.payload.size() <= 0xffff, "packet payload too large");
    // CRC covers mote + seq + len + payload (everything but itself).
    std::vector<uint8_t> covered;
    covered.reserve(8 + packet.payload.size());
    put16(covered, packet.mote);
    put32(covered, packet.seq);
    put16(covered, uint16_t(packet.payload.size()));
    covered.insert(covered.end(), packet.payload.begin(),
                   packet.payload.end());
    uint16_t crc = crc16(covered.data(), covered.size());

    std::vector<uint8_t> frame;
    frame.reserve(kHeaderBytes + packet.payload.size());
    frame.insert(frame.end(), covered.begin(), covered.begin() + 8);
    put16(frame, crc);
    frame.insert(frame.end(), packet.payload.begin(), packet.payload.end());
    return frame;
}

bool
parsePacket(const std::vector<uint8_t> &frame, Packet &out)
{
    return parsePacket(frame.data(), frame.size(), out);
}

bool
parsePacket(const uint8_t *frame, size_t size, Packet &out)
{
    if (size < kHeaderBytes)
        return false;
    uint16_t length = uint16_t(frame[6]) | uint16_t(frame[7]) << 8;
    if (size != kHeaderBytes + size_t(length))
        return false;
    uint16_t stored_crc = uint16_t(frame[8]) | uint16_t(frame[9]) << 8;
    // Recompute over the CRC-covered bytes — header sans crc, then
    // payload — chained across the crc field instead of copied into
    // one buffer.
    uint16_t crc = crc16Update(0xffff, frame, 8);
    crc = crc16Update(crc, frame + kHeaderBytes, size - kHeaderBytes);
    if (crc != stored_crc)
        return false;
    out.mote = uint16_t(frame[0]) | uint16_t(frame[1]) << 8;
    uint32_t seq = 0;
    for (int i = 5; i >= 2; --i)
        seq = seq << 8 | frame[i];
    out.seq = seq;
    out.payload.assign(frame + kHeaderBytes, frame + size);
    return true;
}

std::vector<Packet>
packetizeTrace(const trace::TimingTrace &trace, uint16_t mote, size_t mtu)
{
    if (mtu < kHeaderBytes + kMaxRecordBytes) {
        fatal("net: MTU ", mtu, " cannot fit the ", kHeaderBytes,
              "-byte header plus one worst-case record (need >= ",
              kHeaderBytes + kMaxRecordBytes, ")");
    }
    const size_t capacity = mtu - kHeaderBytes;

    std::vector<Packet> out;
    Packet current;
    current.mote = mote;
    current.seq = 0;
    int64_t prev_end = 0; // restarted per packet: payloads self-contained
    for (const auto &record : trace.records()) {
        std::vector<uint8_t> encoded;
        int64_t basis = prev_end;
        trace::appendRecord(encoded, record, basis);
        if (current.payload.size() + encoded.size() > capacity) {
            CT_ASSERT(!current.payload.empty(),
                      "net: record larger than MTU payload");
            out.push_back(std::move(current));
            current = Packet{};
            current.mote = mote;
            current.seq = uint32_t(out.size());
            prev_end = 0;
            encoded.clear();
            basis = prev_end;
            trace::appendRecord(encoded, record, basis);
        }
        current.payload.insert(current.payload.end(), encoded.begin(),
                               encoded.end());
        prev_end = basis;
    }
    if (!current.payload.empty())
        out.push_back(std::move(current));
    return out;
}

bool
decodePayload(const std::vector<uint8_t> &payload,
              std::vector<trace::TimingRecord> &out)
{
    size_t cursor = 0;
    int64_t prev_end = 0;
    while (cursor < payload.size()) {
        trace::TimingRecord record;
        if (trace::decodeRecord(payload, cursor, prev_end, record) !=
            trace::RecordDecode::Ok) {
            return false;
        }
        out.push_back(record);
    }
    return true;
}

size_t
framedTraceBytes(const trace::TimingTrace &trace, size_t mtu)
{
    size_t total = 0;
    for (const auto &packet : packetizeTrace(trace, 0, mtu))
        total += kHeaderBytes + packet.payload.size();
    return total;
}

double
bytesPerRecordFramed(const trace::TimingTrace &trace, size_t mtu)
{
    if (trace.empty())
        return 0.0;
    return double(framedTraceBytes(trace, mtu)) / double(trace.size());
}

} // namespace ct::net
