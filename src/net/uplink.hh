/**
 * @file
 * Mote-side uplink: reliable-enough delivery of a packetized trace
 * over the lossy channel, plus the round-based transfer driver that
 * ties uplink, channel, and collector together.
 *
 * The protocol is selective-repeat with a bounded window: each round
 * the uplink (re)transmits up to `window` unacknowledged packets
 * whose backoff has elapsed. A packet's retransmit interval doubles
 * after every attempt (exponential backoff, capped), resets on
 * nothing — acks simply mark packets done. After `maxRetries`
 * retransmissions a packet is abandoned (the sink's skip-ahead
 * recovers the stream past it). With `retransmit` off every packet is
 * sent exactly once — the fire-and-forget mode the loss-degradation
 * experiments use.
 *
 * Everything is deterministic: the uplink draws no randomness at all,
 * and the channel's draws are sequenced by the single-threaded round
 * loop, so one (trace, config, seed) reproduces bit-for-bit.
 */

#ifndef CT_NET_UPLINK_HH
#define CT_NET_UPLINK_HH

#include <cstdint>
#include <vector>

#include "net/channel.hh"
#include "net/collector.hh"
#include "net/packet.hh"

namespace ct::net {

/** Retransmission policy knobs. */
struct UplinkConfig
{
    /** Retransmit unacked packets? Off = send-once, fire-and-forget. */
    bool retransmit = true;
    /** Max distinct unacked packets in flight per round. */
    size_t window = 8;
    /** Retransmissions allowed per packet (beyond the first send). */
    size_t maxRetries = 16;
    /** Rounds between the first send and the first retransmit. */
    uint64_t backoffRounds = 1;
    /** Backoff doubling cap, in rounds. */
    uint64_t maxBackoffRounds = 64;
    /** Safety stop for the transfer driver's round loop. */
    uint64_t maxRounds = 100'000;
};

/** Sender-side accounting. */
struct UplinkStats
{
    uint64_t transmissions = 0;   //!< frames handed to the channel
    uint64_t retransmissions = 0; //!< of those, repeat attempts
    uint64_t acksHeard = 0;
    uint64_t giveUps = 0; //!< packets abandoned after maxRetries
};

/** The mote-side sender for one packetized trace. */
class MoteUplink
{
  public:
    explicit MoteUplink(std::vector<Packet> packets,
                        const UplinkConfig &config = {});

    /** Packets to transmit in @p round (attempts are recorded). */
    std::vector<Packet> poll(uint64_t round);

    /** Fold in an ack heard from the sink. */
    void onAck(const Ack &ack);

    /** Every packet either acknowledged or abandoned. */
    bool done() const;

    /** Every packet acknowledged (nothing abandoned). */
    bool complete() const;

    size_t packetCount() const { return slots_.size(); }
    const UplinkStats &stats() const { return stats_; }

  private:
    struct Slot
    {
        Packet packet;
        bool acked = false;
        bool abandoned = false;
        size_t attempts = 0;
        uint64_t nextAttempt = 0;
        uint64_t backoff = 0;

        bool finished() const { return acked || abandoned; }
    };

    UplinkConfig config_;
    UplinkStats stats_;
    std::vector<Slot> slots_;
    size_t base_ = 0; //!< first unfinished slot
};

/** Outcome of shipping one trace through the simulated network. */
struct TransferOutcome
{
    size_t packets = 0;     //!< packets the trace split into
    bool complete = false;  //!< sink accepted every one of them
    uint64_t rounds = 0;    //!< simulation rounds the transfer took
    UplinkStats uplink;
    ChannelStats channel;
};

/**
 * Drive one mote's trace through a fresh LossyChannel into @p sink:
 * packetize, then loop rounds of poll -> send -> drain -> offer ->
 * ack until the uplink is done (plus a final flush of delayed frames
 * and a finalize() releasing any buffered tail). The channel is
 * seeded with @p seed; the collector keeps its own cross-transfer
 * state, so one sink can serve many motes.
 */
TransferOutcome transferTrace(const trace::TimingTrace &trace, uint16_t mote,
                              size_t mtu, const ChannelConfig &channel_config,
                              const UplinkConfig &uplink_config,
                              SinkCollector &sink, uint64_t seed);

} // namespace ct::net

#endif // CT_NET_UPLINK_HH
