/**
 * @file
 * Seeded fault-injection simulator for the mote-to-sink radio link.
 *
 * The channel is a discrete-time queue: every simulation round the
 * caller advance()s time, send()s the frames transmitted that round,
 * and drain()s the frames whose (possibly delayed) delivery is due.
 * Faults are injected per frame, in a fixed draw order from one
 * explicitly seeded Rng, so a given (config, seed, frame sequence)
 * reproduces bit-for-bit — the property the fleet driver's
 * jobs-invariance and CI's determinism diffs rely on:
 *
 *  - **drop**: i.i.d. Bernoulli loss, or two-state Gilbert–Elliott
 *    bursty loss (good state uses dropRate, bad state uses
 *    burstDropRate; per-frame state transitions make losses cluster);
 *  - **corruption**: with bitFlipRate probability, 1–3 random bit
 *    flips anywhere in the frame (header or payload) — always
 *    detectable by the packet CRC;
 *  - **duplication**: the frame is enqueued twice, each copy with its
 *    own delivery delay;
 *  - **reordering**: each surviving copy is delayed by a uniform
 *    0..reorderWindow rounds; frames due the same round keep their
 *    send order (reorderWindow = 0 means FIFO).
 *
 * The reverse (ack) path shares the channel's Rng: ackSurvives()
 * draws one Bernoulli against ackDropRate.
 */

#ifndef CT_NET_CHANNEL_HH
#define CT_NET_CHANNEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace ct::net {

/** Fault-injection knobs (all off by default: a perfect link). */
struct ChannelConfig
{
    /** I.i.d. frame loss probability (good state when burstLoss). */
    double dropRate = 0.0;
    /** Probability a delivered frame is duplicated. */
    double duplicateRate = 0.0;
    /** Max extra delivery delay in rounds (0 = strict FIFO). */
    size_t reorderWindow = 0;
    /** Probability a frame gets 1-3 random bit flips. */
    double bitFlipRate = 0.0;

    /// @name Gilbert-Elliott bursty loss
    /// @{
    bool burstLoss = false;
    /** P(good -> bad) per offered frame. */
    double burstEnterProb = 0.02;
    /** P(bad -> good) per offered frame (1/exit = mean burst length). */
    double burstExitProb = 0.25;
    /** Frame loss probability while in the bad state. */
    double burstDropRate = 0.75;
    /// @}

    /** Reverse-path loss: probability an ack is dropped. */
    double ackDropRate = 0.0;
};

/** What the channel did to the traffic so far. */
struct ChannelStats
{
    uint64_t offered = 0;    //!< frames handed to send()
    uint64_t dropped = 0;    //!< frames lost (never delivered)
    uint64_t duplicated = 0; //!< extra copies enqueued
    uint64_t corrupted = 0;  //!< frames that had bits flipped
    uint64_t delivered = 0;  //!< frames handed back by drain()/flush()
    uint64_t acksDropped = 0; //!< reverse-path acks lost
};

/** The simulated lossy link; see file comment for the fault model. */
class LossyChannel
{
  public:
    LossyChannel(const ChannelConfig &config, uint64_t seed);

    /** Advance simulated time by one round (call once per round). */
    void advance() { ++now_; }

    /** Offer one on-air frame for transmission this round. */
    void send(const std::vector<uint8_t> &frame);

    /** Frames due at or before the current round, in delivery order. */
    std::vector<std::vector<uint8_t>> drain();

    /** Every frame still in flight, in delivery order (end of run). */
    std::vector<std::vector<uint8_t>> flush();

    /** One reverse-path Bernoulli: does this ack get through? */
    bool ackSurvives();

    /** Frames currently in flight (delayed, not yet due). */
    size_t inFlight() const { return inflight_.size(); }

    const ChannelConfig &config() const { return config_; }
    const ChannelStats &stats() const { return stats_; }

  private:
    struct InFlight
    {
        uint64_t due = 0;
        uint64_t order = 0; //!< tie-break: enqueue order
        std::vector<uint8_t> frame;
    };

    void enqueue(std::vector<uint8_t> frame);
    std::vector<std::vector<uint8_t>> take(uint64_t due_limit);

    ChannelConfig config_;
    ChannelStats stats_;
    Rng rng_;
    bool badState_ = false;
    uint64_t now_ = 0;
    uint64_t order_ = 0;
    std::vector<InFlight> inflight_;
};

} // namespace ct::net

#endif // CT_NET_CHANNEL_HH
