/**
 * @file
 * IR rewriting that inserts edge counters.
 *
 * Counted edges out of unconditional blocks get their counter update
 * appended in the source block; counted branch edges are split through a
 * fresh block holding the update. The counter update sequence is the
 * classic 4-instruction load/inc/store using registers r14/r15, which
 * are reserved for instrumentation by convention (the workload suite
 * never touches them).
 */

#ifndef CT_PROFILER_INSTRUMENT_HH
#define CT_PROFILER_INSTRUMENT_HH

#include "ir/module.hh"
#include "profiler/plan.hh"

namespace ct::profiler {

/** Registers reserved for counter updates. */
constexpr ir::Reg kScratchA = 14;
constexpr ir::Reg kScratchB = 15;

/** Cycles one counter update costs under a given cost model is
 *  li + ld + addi + st; see counterUpdateCycles(). */
constexpr size_t kCounterUpdateInsts = 4;

/** A module with counters inserted per a ModulePlan. */
struct InstrumentedProgram
{
    ir::Module module; //!< rewritten copy (split blocks appended)
    ModulePlan plan;
};

/**
 * Rewrite @p original per @p plan. The caller must size simulator RAM
 * to cover [plan.counterBase, plan.counterBase + plan.counterCount()).
 */
InstrumentedProgram instrumentModule(const ir::Module &original,
                                     const ModulePlan &plan);

/**
 * Read the counted-edge values of @p proc from a RAM snapshot taken
 * after running the instrumented program.
 */
std::vector<double> readCounters(const std::vector<ir::Word> &ram,
                                 const ModulePlan &plan, ir::ProcId proc);

} // namespace ct::profiler

#endif // CT_PROFILER_INSTRUMENT_HH
