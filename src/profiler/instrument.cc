#include "profiler/instrument.hh"

#include "ir/verify.hh"
#include "util/logging.hh"

namespace ct::profiler {

namespace {

/** The 4-instruction counter update targeting RAM word @p addr. */
std::vector<ir::Inst>
counterUpdate(ir::Word addr)
{
    using ir::Opcode;
    std::vector<ir::Inst> code;
    code.push_back({Opcode::Li, kScratchB, 0, 0, addr});
    code.push_back({Opcode::Ld, kScratchA, kScratchB, 0, 0});
    code.push_back({Opcode::AddI, kScratchA, kScratchA, 0, 1});
    code.push_back({Opcode::St, 0, kScratchB, kScratchA, 0});
    return code;
}

void
retargetBranch(ir::Terminator &term, ir::BlockId old_target,
               ir::BlockId new_target)
{
    bool hit = false;
    if (term.taken == old_target) {
        term.taken = new_target;
        hit = true;
    } else if (term.isBranch() && term.fallthrough == old_target) {
        term.fallthrough = new_target;
        hit = true;
    }
    CT_ASSERT(hit, "retargetBranch: edge target not found");
}

} // namespace

InstrumentedProgram
instrumentModule(const ir::Module &original, const ModulePlan &plan)
{
    CT_ASSERT(plan.procs.size() == original.procedureCount(),
              "instrumentModule: plan does not match module");

    InstrumentedProgram out{original, plan};

    for (ir::ProcId id = 0; id < out.module.procedureCount(); ++id) {
        ir::Procedure &proc = out.module.procedure(id);
        const ProcPlan &pp = plan.procs[id];

        for (size_t k = 0; k < pp.counted.size(); ++k) {
            const ir::Edge &edge = pp.counted[k];
            ir::Word addr = plan.slotAddress(id, k);
            auto update = counterUpdate(addr);

            ir::BasicBlock &from = proc.block(edge.from);
            if (from.term.isJump()) {
                // Single successor: count in place.
                from.insts.insert(from.insts.end(), update.begin(),
                                  update.end());
            } else if (from.term.isBranch()) {
                // Split the edge through a fresh counting block.
                ir::BlockId split = proc.addBlock(
                    "cnt_" + std::to_string(edge.from) + "_" +
                    std::to_string(edge.to));
                ir::BasicBlock &sb = proc.block(split);
                sb.insts = update;
                sb.term.kind = ir::TermKind::Jump;
                sb.term.taken = edge.to;
                retargetBranch(proc.block(edge.from).term, edge.to, split);
            } else {
                panic("counted edge out of a Return block");
            }
        }
    }

    auto report = ir::verifyModule(out.module);
    if (!report.ok())
        panic("instrumented module failed verification:\n",
              report.toString());
    return out;
}

std::vector<double>
readCounters(const std::vector<ir::Word> &ram, const ModulePlan &plan,
             ir::ProcId proc)
{
    CT_ASSERT(proc < plan.procs.size(), "readCounters: bad proc");
    std::vector<double> out;
    for (size_t k = 0; k < plan.procs[proc].counted.size(); ++k) {
        ir::Word addr = plan.slotAddress(proc, k);
        CT_ASSERT(addr >= 0 && size_t(addr) < ram.size(),
                  "counter address outside RAM snapshot");
        out.push_back(double(ram[size_t(addr)]));
    }
    return out;
}

} // namespace ct::profiler
