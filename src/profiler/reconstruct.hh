/**
 * @file
 * Flow-conservation reconstruction of full edge profiles from the
 * counted subset (the payoff of spanning-tree counter placement).
 */

#ifndef CT_PROFILER_RECONSTRUCT_HH
#define CT_PROFILER_RECONSTRUCT_HH

#include "ir/profile.hh"
#include "profiler/plan.hh"

namespace ct::profiler {

/**
 * Recover every CFG edge count of @p proc from the physical counter
 * values @p counted_values (in ProcPlan::counted order) plus the known
 * invocation count, by leaf elimination on the closed flow graph.
 * panic()s if the system is not triangularizable (which cannot happen
 * for a plan produced by planProcedure on a verified procedure).
 */
ir::EdgeProfile reconstructProfile(const ir::Procedure &proc,
                                   const ProcPlan &plan,
                                   const std::vector<double> &counted_values,
                                   double invocations);

/**
 * Reconstruct profiles for a whole module from a post-run RAM snapshot.
 * @param invocations per-procedure invocation counts.
 */
ir::ModuleProfile reconstructModuleProfile(
    const ir::Module &module, const ModulePlan &plan,
    const std::vector<ir::Word> &ram, const std::vector<double> &invocations);

} // namespace ct::profiler

#endif // CT_PROFILER_RECONSTRUCT_HH
