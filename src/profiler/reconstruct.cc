#include "profiler/reconstruct.hh"

#include "profiler/instrument.hh"
#include "util/logging.hh"

namespace ct::profiler {

ir::EdgeProfile
reconstructProfile(const ir::Procedure &proc, const ProcPlan &plan,
                   const std::vector<double> &counted_values,
                   double invocations)
{
    CT_ASSERT(counted_values.size() == plan.counted.size(),
              "reconstructProfile: counter value count mismatch");

    // Closed circulation graph: vertices = blocks + EXIT; edges = real
    // CFG edges, ret->EXIT virtuals, and EXIT->entry carrying the
    // invocation count.
    struct FlowEdge
    {
        size_t from;
        size_t to;
        bool known;
        double value;
        bool real;
        ir::Edge source; //!< valid when real
    };

    const size_t exit_vertex = proc.blockCount();
    std::vector<FlowEdge> flow;

    for (size_t k = 0; k < plan.counted.size(); ++k) {
        const ir::Edge &edge = plan.counted[k];
        flow.push_back({edge.from, edge.to, true, counted_values[k], true,
                        edge});
    }
    for (const ir::Edge &edge : plan.derived)
        flow.push_back({edge.from, edge.to, false, 0.0, true, edge});
    for (ir::BlockId ret : proc.exitBlocks())
        flow.push_back({ret, exit_vertex, false, 0.0, false, {}});
    flow.push_back({exit_vertex, proc.entry(), true, invocations, false, {}});

    // Leaf elimination: any vertex with exactly one unknown incident
    // edge determines it by flow balance (inflow == outflow).
    const size_t vertices = proc.blockCount() + 1;
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t v = 0; v < vertices; ++v) {
            double balance = 0.0; // inflow - outflow over known edges
            FlowEdge *unknown = nullptr;
            int unknown_sign = 0; // +1 if unknown flows in, -1 if out
            size_t unknown_count = 0;
            for (auto &edge : flow) {
                if (edge.from != v && edge.to != v)
                    continue;
                if (edge.from == v && edge.to == v)
                    continue; // self loop cancels in the balance
                int sign = edge.to == v ? +1 : -1;
                if (edge.known) {
                    balance += sign * edge.value;
                } else {
                    ++unknown_count;
                    unknown = &edge;
                    unknown_sign = sign;
                }
            }
            if (unknown_count == 1) {
                unknown->known = true;
                unknown->value = -balance / double(unknown_sign);
                if (unknown->value < 0.0 && unknown->value > -1e-6)
                    unknown->value = 0.0;
                progress = true;
            }
        }
    }

    ir::EdgeProfile out;
    out.addInvocations(invocations);
    for (const auto &edge : flow) {
        if (!edge.real)
            continue;
        if (!edge.known)
            panic("reconstructProfile: unsolvable flow system in '",
                  proc.name(), "' (edge ", edge.source.from, " -> ",
                  edge.source.to, ")");
        out.addEdge(edge.source.from, edge.source.to, edge.value);
    }

    // Note on self loops (a branch whose taken target is its own block):
    // they cancel out of every balance equation, so they can never be
    // derived — planProcedure always places them in `counted` (the
    // union-find "join" of a vertex with itself fails), keeping the
    // solver complete.
    return out;
}

ir::ModuleProfile
reconstructModuleProfile(const ir::Module &module, const ModulePlan &plan,
                         const std::vector<ir::Word> &ram,
                         const std::vector<double> &invocations)
{
    CT_ASSERT(invocations.size() == module.procedureCount(),
              "reconstructModuleProfile: invocation vector mismatch");
    ir::ModuleProfile out(module.procedureCount());
    for (ir::ProcId id = 0; id < module.procedureCount(); ++id) {
        auto counted = readCounters(ram, plan, id);
        out[id] = reconstructProfile(module.procedure(id), plan.procs[id],
                                     counted, invocations[id]);
    }
    return out;
}

} // namespace ct::profiler
