/**
 * @file
 * Instrumentation planning: which CFG edges receive RAM counters.
 *
 * This is the conventional profiling approach Code Tomography competes
 * against. Two placements are provided:
 *  - AllEdges: a counter on every CFG edge (naive),
 *  - SpanningTree: Knuth's optimal placement — counters only on edges
 *    outside a spanning tree of the (virtually closed) flow graph; tree
 *    edge counts are recovered afterwards by flow conservation.
 */

#ifndef CT_PROFILER_PLAN_HH
#define CT_PROFILER_PLAN_HH

#include <vector>

#include "ir/module.hh"

namespace ct::profiler {

/** Counter placement strategy. */
enum class ProfilerMode {
    AllEdges,
    SpanningTree,
};

const char *profilerModeName(ProfilerMode mode);

/** Plan for one procedure. */
struct ProcPlan
{
    /** Edges that receive a physical counter, with assigned slot index
     *  (slot i lives at RAM address base + i, bases assigned at module
     *  level). */
    std::vector<ir::Edge> counted;
    /** Edges whose counts are derived by flow conservation. */
    std::vector<ir::Edge> derived;
};

/** Plan for a whole module, with counter slot assignment. */
struct ModulePlan
{
    ProfilerMode mode = ProfilerMode::AllEdges;
    std::vector<ProcPlan> procs; //!< indexed by ProcId
    /** First RAM word used for counters. */
    ir::Word counterBase = 0;

    /** Total number of physical counters. */
    size_t counterCount() const;

    /** RAM bytes consumed by counters (2 bytes each on a 16-bit mote). */
    size_t counterBytes() const { return counterCount() * 2; }

    /**
     * RAM address of the counter for the @p k-th counted edge of
     * procedure @p proc (slots are assigned in plan order).
     */
    ir::Word slotAddress(ir::ProcId proc, size_t k) const;
};

/** Choose counted/derived edges for one procedure. */
ProcPlan planProcedure(const ir::Procedure &proc, ProfilerMode mode);

/**
 * Plan every procedure and assign counter slots starting at
 * @p counter_base.
 */
ModulePlan planModule(const ir::Module &module, ProfilerMode mode,
                      ir::Word counter_base);

} // namespace ct::profiler

#endif // CT_PROFILER_PLAN_HH
