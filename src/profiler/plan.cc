#include "profiler/plan.hh"

#include <numeric>

#include "util/logging.hh"

namespace ct::profiler {

const char *
profilerModeName(ProfilerMode mode)
{
    switch (mode) {
      case ProfilerMode::AllEdges: return "all-edges";
      case ProfilerMode::SpanningTree: return "spanning-tree";
    }
    panic("profilerModeName: bad mode");
}

size_t
ModulePlan::counterCount() const
{
    size_t n = 0;
    for (const auto &proc : procs)
        n += proc.counted.size();
    return n;
}

ir::Word
ModulePlan::slotAddress(ir::ProcId proc, size_t k) const
{
    CT_ASSERT(proc < procs.size(), "slotAddress: bad proc");
    CT_ASSERT(k < procs[proc].counted.size(), "slotAddress: bad slot");
    size_t offset = 0;
    for (ir::ProcId p = 0; p < proc; ++p)
        offset += procs[p].counted.size();
    return counterBase + ir::Word(offset + k);
}

namespace {

/** Union-find over vertices of the closed flow graph. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), size_t(0));
    }

    size_t
    find(size_t v)
    {
        while (parent_[v] != v) {
            parent_[v] = parent_[parent_[v]];
            v = parent_[v];
        }
        return v;
    }

    /** @retval true if the union joined two components. */
    bool
    unite(size_t a, size_t b)
    {
        size_t ra = find(a);
        size_t rb = find(b);
        if (ra == rb)
            return false;
        parent_[ra] = rb;
        return true;
    }

  private:
    std::vector<size_t> parent_;
};

} // namespace

ProcPlan
planProcedure(const ir::Procedure &proc, ProfilerMode mode)
{
    ProcPlan plan;
    const auto edges = proc.edges();

    if (mode == ProfilerMode::AllEdges) {
        plan.counted = edges;
        return plan;
    }

    // SpanningTree: close the flow graph with a virtual EXIT vertex
    // (ret-block -> EXIT edges plus EXIT -> entry). Virtual edges join
    // the tree first — their counts come for free (the invocation count
    // is known), so only real co-tree edges need physical counters.
    const size_t exit_vertex = proc.blockCount();
    UnionFind uf(proc.blockCount() + 1);

    uf.unite(exit_vertex, proc.entry());
    for (ir::BlockId ret : proc.exitBlocks())
        uf.unite(ret, exit_vertex);

    for (const ir::Edge &edge : edges) {
        if (uf.unite(edge.from, edge.to))
            plan.derived.push_back(edge);
        else
            plan.counted.push_back(edge);
    }
    return plan;
}

ModulePlan
planModule(const ir::Module &module, ProfilerMode mode, ir::Word counter_base)
{
    ModulePlan plan;
    plan.mode = mode;
    plan.counterBase = counter_base;
    for (const auto &proc : module.procedures())
        plan.procs.push_back(planProcedure(proc, mode));
    return plan;
}

} // namespace ct::profiler
