#include "exec/thread_pool.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace ct::exec {

size_t
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : size_t(n);
}

size_t
resolveJobs(size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("CT_JOBS")) {
        long parsed = 0;
        if (parseLong(env, parsed) && parsed > 0)
            return size_t(parsed);
        warn("ignoring CT_JOBS='", env, "' (want a positive integer)");
    }
    return hardwareJobs();
}

ThreadPool::ThreadPool(size_t jobs) : jobs_(resolveJobs(jobs))
{
    if (jobs_ <= 1)
        return;
    workers_.reserve(jobs_);
    for (size_t i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CT_ASSERT(!stop_, "submit() on a stopped ThreadPool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // packaged_task: exceptions land in the future
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    size_t shards = std::min(jobs_, n);
    if (shards <= 1 || workers_.empty()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::vector<std::future<void>> pending;
    pending.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
        pending.push_back(submit([s, shards, n, &fn] {
            for (size_t i = s; i < n; i += shards)
                fn(i);
        }));
    }
    // Collect in shard order so the first failure rethrown is the one
    // with the lowest shard index — deterministic error reporting.
    std::exception_ptr first;
    for (auto &future : pending) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace ct::exec
