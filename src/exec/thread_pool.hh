/**
 * @file
 * Parallel execution engine for the Code Tomography harness.
 *
 * A deliberately small, work-stealing-free thread pool: a fixed set of
 * workers drains one shared FIFO queue, `submit()` returns a
 * `std::future`, and `parallelFor(n, fn)` statically shards an index
 * range round-robin across the workers (shard s handles indices s,
 * s + shards, s + 2*shards, ...). There is no dynamic rebalancing by
 * design: every task the library fans out (placement evaluations,
 * per-workload campaigns) is deterministic given its index and seed, so
 * static sharding keeps the execution plan — and therefore every
 * recorded number — independent of scheduling luck.
 *
 * Determinism contract: callers derive every per-task seed from the
 * task *index*, never from the executing thread, and write results into
 * index-addressed slots (see parallelMap). Under that discipline any
 * jobs count, including 1, produces bit-identical results.
 *
 * `jobs == 1` is the degenerate case: no worker threads are created and
 * submit()/parallelFor() run the work inline on the calling thread —
 * exactly the library's historical serial behavior.
 */

#ifndef CT_EXEC_THREAD_POOL_HH
#define CT_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ct::exec {

/** Hardware thread count; never less than 1. */
size_t hardwareJobs();

/**
 * Resolve a requested job count: a positive @p requested wins; 0 means
 * "auto" — the CT_JOBS environment variable when set (and positive),
 * otherwise hardwareJobs().
 */
size_t resolveJobs(size_t requested);

/** Fixed-size thread pool with a shared FIFO queue. */
class ThreadPool
{
  public:
    /** @p jobs is resolved via resolveJobs(); 1 means fully inline. */
    explicit ThreadPool(size_t jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved worker count (1 = inline execution, no threads). */
    size_t jobs() const { return jobs_; }

    /**
     * Schedule @p fn; the future carries its result or exception. With
     * jobs() == 1 the call runs inline before submit() returns.
     */
    template <typename Fn>
    auto submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using R = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        auto future = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return future;
        }
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run fn(0) ... fn(n-1), sharded round-robin over the workers;
     * returns when all indices completed. Exceptions propagate: the
     * first failing shard's exception (in shard order) is rethrown.
     * Within a shard, indices run in increasing order; with jobs() == 1
     * the whole range runs inline in order — the serial semantics.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    size_t jobs_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * parallelFor with an index-addressed result vector: out[i] = fn(i).
 * The output order depends only on the indices, never on scheduling,
 * so results are identical for every jobs count.
 */
template <typename Fn>
auto
parallelMap(ThreadPool &pool, size_t n, Fn &&fn)
    -> std::vector<std::invoke_result_t<std::decay_t<Fn>, size_t>>
{
    using R = std::invoke_result_t<std::decay_t<Fn>, size_t>;
    std::vector<R> out(n);
    pool.parallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace ct::exec

#endif // CT_EXEC_THREAD_POOL_HH
