/**
 * @file
 * ct::causal — analytic what-if ("causal") profiling over the
 * absorbing-DTMC timing model.
 *
 * A flat profile says where cycles go; a causal profile says what the
 * end-to-end run time would be *if a given procedure's placement were
 * perfect*. Coz answers that question experimentally with virtual
 * speedups; because this library owns the whole model, we can answer
 * it exactly: scaling a procedure's placement penalties (mispredict
 * flushes and trailing untaken jumps) re-weights only the *reward*
 * vector of its absorbing chain — the transition matrix Q, and hence
 * the fundamental matrix N = (I-Q)^-1 and every expected visit count,
 * is untouched. The engine therefore factors the chain once per
 * procedure (one solve for the visit vector) and evaluates each
 * counterfactual as a dot product plus a linear bottom-up fold over
 * the call graph: `whatIf(proc, dial)` is closed-form, exact, and
 * needs no re-simulation.
 *
 * The dial generalizes Coz's virtual-speedup axis: dial = 0 is the
 * baseline, dial = 1 removes the procedure's placement penalties
 * entirely (the upper bound on what any re-placement of that
 * procedure can recover). Because nothing in this model contends
 * (no locks, no queues), expected cycles are *linear* in the dial —
 * the sweep is a verification axis rather than a discovery axis, and
 * the differential oracle in ct::check exploits it: re-simulating a
 * genuinely zero-penalty layout on ct::sim must match `whatIf(p, 1)`
 * to solver precision when the chain is parameterized with the run's
 * own empirical branch frequencies (see docs/CAUSAL.md for why that
 * identity is exact, not approximate).
 */

#ifndef CT_CAUSAL_CAUSAL_HH
#define CT_CAUSAL_CAUSAL_HH

#include <array>
#include <string>
#include <vector>

#include "ir/module.hh"
#include "ir/profile.hh"
#include "sim/costs.hh"
#include "sim/energy.hh"
#include "sim/lower.hh"

namespace ct::causal {

/** Per-procedure branch taken-probabilities, branchBlocks() order. */
using ModuleTheta = std::vector<std::vector<double>>;

/** Extract theta for every procedure from @p profile (empirical
 *  frequencies; @p fallback where a branch was never executed). */
ModuleTheta thetaFromProfile(const ir::Module &module,
                             const ir::ModuleProfile &profile,
                             double fallback = 0.5);

/**
 * Fill gaps in an estimator-produced theta set: procedures with an
 * empty vector (no samples reached the sink) get @p fallback on every
 * branch, so the engine can always be built from a ModuleEstimate's
 * `.thetas` member.
 */
ModuleTheta normalizeTheta(const ir::Module &module, ModuleTheta theta,
                           double fallback = 0.5);

/**
 * Expected visits per invocation of @p proc under @p theta, indexed by
 * block id — the layout-invariant factor of the what-if model (the
 * absorbing chain depends only on the CFG and theta, never on the
 * physical block order). Exposed so placement pricers (ct::budget) can
 * evaluate many candidate orders against one chain factorization.
 * fatal()s when the chain never reaches an exit under @p theta.
 */
std::vector<double> expectedVisits(const ir::Procedure &proc,
                                   const std::vector<double> &theta);

/**
 * Expected placement-penalty cycles per invocation of @p proc as
 * placed by @p placed: mispredict flushes plus trailing untaken jumps
 * — exactly the per-edge extras of the timing model, visit-weighted.
 * @p visits must come from expectedVisits(proc, theta).
 */
double placementPenaltyPerInvocation(const ir::Procedure &proc,
                                     const sim::LoweredProc &placed,
                                     const sim::CostModel &costs,
                                     sim::PredictPolicy policy,
                                     const std::vector<double> &theta,
                                     const std::vector<double> &visits);

/**
 * Expected *self* cycles per invocation of @p proc as placed by
 * @p placed (callee bodies excluded): straight-line instruction cycles
 * plus emitted control transfers plus the placement-penalty mass, all
 * visit-weighted. Equals Engine::selfCyclesPerInvocation for the
 * lowering the engine was built from. Because the visit vector is
 * layout-invariant, the difference between two placements of the same
 * procedure is exactly the end-to-end per-invocation delta the what-if
 * engine would report — the candidate-pricing primitive of ct::budget.
 */
double placedSelfCyclesPerInvocation(const ir::Procedure &proc,
                                     const sim::LoweredProc &placed,
                                     const sim::CostModel &costs,
                                     sim::PredictPolicy policy,
                                     const std::vector<double> &theta,
                                     const std::vector<double> &visits);

/** One point of a virtual-speedup curve. */
struct DialPoint
{
    double dial = 0.0;             //!< fraction of penalties removed
    double cyclesPerEvent = 0.0;   //!< counterfactual end-to-end mean
    double virtualSpeedupPct = 0.0; //!< 100 * (baseline - this) / baseline
};

/** Causal attribution of one procedure. */
struct ProcCausal
{
    ir::ProcId proc = ir::kNoProc;
    std::string name;

    /** Expected invocations per entry event (call-graph rate). */
    double callRate = 0.0;
    /** Expected *self* cycles per invocation (callee bodies excluded)
     *  — the quantity a classic flat profile ranks by. */
    double selfCyclesPerInvocation = 0.0;
    /** callRate * selfCyclesPerInvocation: flat-profile attribution. */
    double flatCyclesPerEvent = 0.0;
    /** Share of total per-event cycles under the flat attribution. */
    double flatSharePct = 0.0;
    /** Placement-penalty cycles charged to this procedure per event
     *  (mispredicts + trailing jumps; the linear-model upper bound the
     *  causal delta must equal — see sum-consistency in prop_causal). */
    double penaltyCyclesPerEvent = 0.0;

    /** baseline - whatIf(proc, 1): end-to-end cycles recoverable. */
    double deltaCyclesPerEvent = 0.0;
    /** 100 * deltaCyclesPerEvent / baseline. */
    double virtualSpeedupPct = 0.0;
    /** TelosB energy recoverable per event (penalties are CPU-active
     *  cycles, so the conversion is exact). */
    double deltaEnergyMicrojoulesPerEvent = 0.0;

    /** 1-based rank under the flat attribution (1 = hottest). */
    size_t flatRank = 0;
    /** 1-based rank under the causal delta (1 = fix first). */
    size_t causalRank = 0;

    /** Virtual-speedup curve over the configured dial sweep. */
    std::vector<DialPoint> curve;
};

/** Causal attribution of one branch block (optional granularity). */
struct BlockCausal
{
    ir::ProcId proc = ir::kNoProc;
    ir::BlockId block = ir::kNoBlock;
    std::string procName;
    double deltaCyclesPerEvent = 0.0;
    double virtualSpeedupPct = 0.0;
};

/** Knobs for Engine::profile(). */
struct ProfileOptions
{
    /** Dial sweep evaluated per procedure (1.0 is always implied). */
    std::vector<double> dials = {0.25, 0.5, 0.75, 1.0};
    /** Also attribute per branch block. */
    bool perBlock = false;
    /** Energy model used for the analytic energy deltas. */
    sim::EnergyModel energy = sim::telosEnergyModel();
    /** Label stamped into the export. */
    std::string workload;
};

/** The ranked what-if profile (the deliverable). */
struct CausalProfile
{
    std::string workload;
    /** Analytic end-to-end mean cycles per entry event (idle gaps and
     *  probe overhead excluded — deployment build, probes off). */
    double baselineCyclesPerEvent = 0.0;
    /** Analytic energy per event under the activity decomposition. */
    double baselineEnergyMicrojoulesPerEvent = 0.0;
    /** Sum of every procedure's placement-penalty cycles per event. */
    double totalPenaltyCyclesPerEvent = 0.0;
    std::vector<double> dials;

    /** Invoked procedures, sorted by causal rank (fix-first order). */
    std::vector<ProcCausal> procs;
    /** Branch blocks (perBlock only), sorted by delta, largest first. */
    std::vector<BlockCausal> blocks;

    /** Procedures whose causal rank differs from their flat rank —
     *  the count Coz's thesis predicts is nonzero. */
    size_t rankDisagreements = 0;

    /** Deterministic JSON (sorted keys, %.12g doubles). */
    std::string toJson() const;
    void writeJson(const std::string &path) const;
    /** CSV: one row per (procedure, dial), causal-rank major. */
    void writeCsv(const std::string &path) const;
};

/**
 * The what-if engine. Construction factors every procedure's chain
 * (visit vectors + per-edge penalty masses + static call rates);
 * queries are closed-form re-weightings.
 *
 * Premises (asserted): the call graph is acyclic (the same bottom-up
 * requirement the estimators already impose) and every theta vector
 * matches its procedure's branch count.
 */
class Engine
{
  public:
    Engine(const ir::Module &module, const sim::LoweredModule &lowered,
           const sim::CostModel &costs, sim::PredictPolicy policy,
           ir::ProcId entry, ModuleTheta theta);

    const ir::Module &module() const { return *module_; }
    ir::ProcId entry() const { return entry_; }

    /** Baseline end-to-end expected cycles per entry event. */
    double baselineCyclesPerEvent() const { return baselineMeans_[entry_]; }

    /**
     * End-to-end expected cycles per event when @p proc's placement
     * penalties are scaled by (1 - dial). dial must lie in [0, 1]:
     * 0 reproduces the baseline, 1 removes the penalties entirely.
     */
    double whatIf(ir::ProcId proc, double dial) const;

    /** Same counterfactual restricted to the penalties on @p block's
     *  outgoing edges. */
    double whatIfBlock(ir::ProcId proc, ir::BlockId block,
                       double dial) const;

    /** Expected invocations of @p proc per entry event. */
    double callRate(ir::ProcId proc) const;

    /** Expected placement-penalty cycles per invocation of @p proc. */
    double penaltyCyclesPerInvocation(ir::ProcId proc) const;

    /** Expected self (callee-exclusive) cycles per invocation. */
    double selfCyclesPerInvocation(ir::ProcId proc) const;

    /** Expected inclusive cycles per invocation (callees folded). */
    double meanCyclesPerInvocation(ir::ProcId proc) const
    {
        return baselineMeans_[proc];
    }

    /** Expected cycles per event split by activity class (CpuActive,
     *  Sense, ... — idle gaps excluded), for the energy baseline. */
    std::array<double, sim::kActivityCount> baselineActivityPerEvent()
        const;

    /** Analytic baseline energy per event under @p energy. */
    double baselineEnergyPerEvent(const sim::EnergyModel &energy) const;

    /** Build the full ranked profile (records causal.* metrics when
     *  the obs registry is enabled; the solve is CT_SPAN-traced). */
    CausalProfile profile(const ProfileOptions &options = {}) const;

  private:
    struct ProcModel
    {
        /** Expected visits per invocation, indexed by block. */
        std::vector<double> visits;
        /** Per-block deterministic cycles, callee bodies excluded. */
        std::vector<double> blockCycles;
        /** Per-block cycles split by activity class (callee excl.). */
        std::vector<std::array<double, sim::kActivityCount>> blockActivity;
        /** Expected placement-penalty cycles per invocation hanging
         *  off each block's outgoing edges (visit-weighted). */
        std::vector<double> blockPenalty;
        /** Sum of blockPenalty: penalty mass per invocation. */
        double penaltyPerInvocation = 0.0;
        /** Self cycles per invocation, penalties included. */
        double selfPerInvocation = 0.0;
        /** Expected calls per invocation: (callee, rate, farExtra). */
        struct CallRate
        {
            ir::ProcId callee;
            double rate;
            double farExtraCycles; //!< far-call surcharge per call
        };
        std::vector<CallRate> calls;
    };

    /**
     * Inclusive means for every procedure with @p target's penalties
     * scaled by @p scale (scale < 1 removes mass); @p target_block
     * restricts the scaling to one block's edges (kNoBlock = all).
     */
    std::vector<double> solveMeans(ir::ProcId target, double scale,
                                   ir::BlockId target_block) const;

    const ir::Module *module_;
    ir::ProcId entry_;
    ModuleTheta theta_;
    std::vector<ProcModel> procs_;
    std::vector<ir::ProcId> bottomUp_;     //!< callees-first order
    std::vector<double> baselineMeans_;    //!< inclusive, per ProcId
    std::vector<double> callRates_;        //!< invocations per event
};

/** One procedure that cleared the re-placement gate. */
struct GateEntry
{
    ir::ProcId proc = ir::kNoProc;
    std::string name;
    /** baseline - whatIf(proc, 1): cycles a perfect re-placement of
     *  this procedure recovers per entry event, under the layout the
     *  engine was built from. */
    double deltaCyclesPerEvent = 0.0;
    /** 100 * deltaCyclesPerEvent / baseline. */
    double virtualSpeedupPct = 0.0;
};

/**
 * The continuous-PGO re-placement gate (docs/PGO.md): every invoked
 * procedure whose causal delta clears @p min_fraction of the baseline
 * cycles per event, sorted by delta descending (ties broken by
 * ascending ProcId so the order is deterministic). @p max_procs > 0
 * truncates to the top entries. This is the ranking that cuts
 * re-placement work to the procedures worth re-placing — the second
 * half of the ROADMAP's causal-feedback item.
 */
std::vector<GateEntry> rankingGate(const Engine &engine,
                                   double min_fraction,
                                   size_t max_procs = 0);

} // namespace ct::causal

#endif // CT_CAUSAL_CAUSAL_HH
