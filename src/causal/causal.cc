#include "causal/causal.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>

#include "markov/chain.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/csv.hh"
#include "util/logging.hh"

namespace ct::causal {

namespace {

/** Activity class a straight-line instruction's cycles belong to. */
sim::Activity
activityOf(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Sleep:
        return sim::Activity::Sleep;
      case ir::Opcode::Sense:
        return sim::Activity::Sense;
      case ir::Opcode::RadioTx:
        return sim::Activity::RadioTx;
      case ir::Opcode::RadioRx:
        return sim::Activity::RadioRx;
      default:
        return sim::Activity::CpuActive;
    }
}

/**
 * Expected visits per invocation under @p theta. A theta that parks a
 * loop's back-edge at exactly 1.0 makes the chain non-absorbing; in
 * that case nudge every branch probability into the open interval and
 * retry — the perturbation is far below solver tolerance.
 */
std::vector<double>
chainVisits(const ir::Procedure &proc, const std::vector<double> &theta)
{
    auto branches = proc.branchBlocks();
    CT_ASSERT(theta.size() == branches.size(), "causal: theta size ",
              theta.size(), " != branch count ", branches.size(), " in '",
              proc.name(), "'");

    auto build = [&](double eps) {
        markov::AbsorbingChain chain(proc.blockCount());
        for (const auto &bb : proc.blocks()) {
            if (bb.term.isJump())
                chain.setTransition(bb.id, bb.term.taken, 1.0);
        }
        for (size_t i = 0; i < branches.size(); ++i) {
            const auto &term = proc.block(branches[i]).term;
            if (term.taken == term.fallthrough) {
                chain.setTransition(branches[i], term.taken, 1.0);
                continue;
            }
            double p = std::clamp(theta[i], eps, 1.0 - eps);
            chain.setTransition(branches[i], term.taken, p);
            chain.setTransition(branches[i], term.fallthrough, 1.0 - p);
        }
        return chain;
    };

    auto chain = build(0.0);
    if (!chain.absorbing(proc.entry()))
        chain = build(1e-9);
    if (!chain.absorbing(proc.entry()))
        fatal("causal: procedure '", proc.name(),
              "' never reaches an exit under the given theta");
    return chain.expectedVisits(proc.entry());
}

/**
 * Visit-weighted placement-penalty mass hanging off each block's
 * outgoing edges under @p placed: mispredict flushes plus trailing
 * untaken jumps, the per-edge extras of the timing model. Shared by
 * the engine's factorization and the free candidate pricers.
 */
std::vector<double>
penaltyMassPerBlock(const ir::Procedure &proc, const sim::LoweredProc &placed,
                    const sim::CostModel &costs, sim::PredictPolicy policy,
                    const std::vector<double> &theta,
                    const std::vector<double> &visits)
{
    std::vector<double> mass(proc.blockCount(), 0.0);
    auto branches = proc.branchBlocks();
    std::vector<size_t> branchIndex(proc.blockCount(), SIZE_MAX);
    for (size_t i = 0; i < branches.size(); ++i)
        branchIndex[branches[i]] = i;
    for (const ir::Edge &edge : proc.edges()) {
        const auto &lb = placed.order[placed.positionOf[edge.from]];
        if (lb.ctrl != sim::CtrlKind::CondBr &&
            lb.ctrl != sim::CtrlKind::CondBrPlusJmp) {
            continue; // Jmp cost lives in the block reward
        }
        double prob = 1.0;
        if (edge.kind == ir::EdgeKind::BranchTaken)
            prob = std::clamp(theta[branchIndex[edge.from]], 0.0, 1.0);
        else if (edge.kind == ir::EdgeKind::BranchFall)
            prob = 1.0 - std::clamp(theta[branchIndex[edge.from]], 0.0, 1.0);
        bool transfer = edge.to == lb.condTarget;
        bool predicted =
            sim::predictsTaken(policy, placed.positionOf[edge.from],
                               placed.positionOf[lb.condTarget]);
        double extra = 0.0;
        if (transfer != predicted)
            extra += double(costs.mispredictPenalty);
        if (!transfer && lb.ctrl == sim::CtrlKind::CondBrPlusJmp)
            extra += double(costs.jump);
        mass[edge.from] += visits[edge.from] * prob * extra;
    }
    return mass;
}

/** %.12g rendering, matching the obs JSON determinism contract. */
std::string
num(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

ModuleTheta
thetaFromProfile(const ir::Module &module, const ir::ModuleProfile &profile,
                 double fallback)
{
    CT_ASSERT(profile.size() == module.procedureCount(),
              "thetaFromProfile: profile covers ", profile.size(),
              " procedures, module has ", module.procedureCount());
    ModuleTheta theta(module.procedureCount());
    for (ir::ProcId id = 0; id < module.procedureCount(); ++id) {
        theta[id] = profile[id].branchProbabilities(module.procedure(id),
                                                    fallback);
    }
    return theta;
}

ModuleTheta
normalizeTheta(const ir::Module &module, ModuleTheta theta, double fallback)
{
    theta.resize(module.procedureCount());
    for (ir::ProcId id = 0; id < module.procedureCount(); ++id) {
        size_t branches = module.procedure(id).branchBlocks().size();
        if (theta[id].empty())
            theta[id].assign(branches, fallback);
        CT_ASSERT(theta[id].size() == branches,
                  "normalizeTheta: proc#", id, " has ", theta[id].size(),
                  " thetas for ", branches, " branches");
        for (double &p : theta[id])
            p = std::clamp(p, 0.0, 1.0);
    }
    return theta;
}

std::vector<double>
expectedVisits(const ir::Procedure &proc, const std::vector<double> &theta)
{
    return chainVisits(proc, theta);
}

double
placementPenaltyPerInvocation(const ir::Procedure &proc,
                              const sim::LoweredProc &placed,
                              const sim::CostModel &costs,
                              sim::PredictPolicy policy,
                              const std::vector<double> &theta,
                              const std::vector<double> &visits)
{
    CT_ASSERT(visits.size() == proc.blockCount(),
              "placementPenalty: visit vector covers ", visits.size(),
              " blocks, '", proc.name(), "' has ", proc.blockCount());
    double total = 0.0;
    for (double m :
         penaltyMassPerBlock(proc, placed, costs, policy, theta, visits))
        total += m;
    return total;
}

double
placedSelfCyclesPerInvocation(const ir::Procedure &proc,
                              const sim::LoweredProc &placed,
                              const sim::CostModel &costs,
                              sim::PredictPolicy policy,
                              const std::vector<double> &theta,
                              const std::vector<double> &visits)
{
    double self = placementPenaltyPerInvocation(proc, placed, costs, policy,
                                                theta, visits);
    for (const auto &bb : proc.blocks()) {
        double cycles = 0.0;
        for (const auto &inst : bb.insts)
            cycles += double(costs.cyclesFor(inst));
        const auto &lb = placed.order[placed.positionOf[bb.id]];
        switch (lb.ctrl) {
          case sim::CtrlKind::Ret:
            cycles += double(costs.retOverhead);
            break;
          case sim::CtrlKind::Fallthrough:
            break;
          case sim::CtrlKind::Jmp:
            cycles += double(costs.jump);
            break;
          case sim::CtrlKind::CondBr:
          case sim::CtrlKind::CondBrPlusJmp:
            cycles += double(costs.branchBase);
            break;
        }
        self += visits[bb.id] * cycles;
    }
    return self;
}

Engine::Engine(const ir::Module &module, const sim::LoweredModule &lowered,
               const sim::CostModel &costs, sim::PredictPolicy policy,
               ir::ProcId entry, ModuleTheta theta)
    : module_(&module), entry_(entry), theta_(std::move(theta))
{
    size_t n = module.procedureCount();
    CT_ASSERT(entry < n, "causal: entry proc#", entry, " out of range");
    CT_ASSERT(theta_.size() == n, "causal: theta covers ", theta_.size(),
              " procedures, module has ", n);
    CT_ASSERT(lowered.procs.size() == n, "causal: lowering covers ",
              lowered.procs.size(), " procedures, module has ", n);

    // Callees-first order; the what-if fold and the call-rate propagation
    // both require an acyclic call graph (the estimators' premise too).
    std::vector<int> state(n, 0);
    std::function<void(ir::ProcId)> visit = [&](ir::ProcId id) {
        if (state[id] == 2)
            return;
        CT_ASSERT(state[id] != 1, "causal: recursive call graph at '",
                  module.procedure(id).name(), "'");
        state[id] = 1;
        for (ir::ProcId callee : module.procedure(id).callees())
            visit(callee);
        state[id] = 2;
        bottomUp_.push_back(id);
    };
    for (ir::ProcId id = 0; id < n; ++id)
        visit(id);

    // Factor every procedure once: the visit vector, the callee-exclusive
    // block rewards (split by activity class), the visit-weighted penalty
    // mass per block, and the static call sites. All later queries are
    // linear folds over these.
    procs_.resize(n);
    for (ir::ProcId id = 0; id < n; ++id) {
        const ir::Procedure &proc = module.procedure(id);
        const sim::LoweredProc &placed = lowered.procs[id];
        CT_ASSERT(placed.proc == id, "causal: placement/procedure mismatch");
        ProcModel &pm = procs_[id];

        pm.visits = chainVisits(proc, theta_[id]);
        pm.blockCycles.assign(proc.blockCount(), 0.0);
        pm.blockActivity.assign(proc.blockCount(), {});
        pm.blockPenalty.assign(proc.blockCount(), 0.0);

        for (const auto &bb : proc.blocks()) {
            double cycles = 0.0;
            auto &act = pm.blockActivity[bb.id];
            for (const auto &inst : bb.insts) {
                double c = double(costs.cyclesFor(inst));
                cycles += c;
                act[size_t(activityOf(inst.op))] += c;
                if (inst.op == ir::Opcode::Call) {
                    ir::ProcId callee = ir::ProcId(inst.imm);
                    CT_ASSERT(callee < n, "causal: call to unknown proc#",
                              callee, " in '", proc.name(), "'");
                    double far = 0.0;
                    if (costs.farCallExtra > 0 &&
                        lowered.procDistance(id, callee) >
                            costs.nearCallWindow) {
                        far = double(costs.farCallExtra);
                    }
                    pm.calls.push_back({callee, pm.visits[bb.id], far});
                }
            }

            const auto &lb = placed.order[placed.positionOf[bb.id]];
            double term = 0.0;
            switch (lb.ctrl) {
              case sim::CtrlKind::Ret:
                term = double(costs.retOverhead);
                break;
              case sim::CtrlKind::Fallthrough:
                break;
              case sim::CtrlKind::Jmp:
                term = double(costs.jump);
                break;
              case sim::CtrlKind::CondBr:
              case sim::CtrlKind::CondBrPlusJmp:
                term = double(costs.branchBase);
                break;
            }
            cycles += term;
            act[size_t(sim::Activity::CpuActive)] += term;
            pm.blockCycles[bb.id] = cycles;
        }

        // Placement-penalty mass: mispredict flushes plus trailing
        // untaken jumps, exactly the per-edge extras of the timing model.
        pm.blockPenalty = penaltyMassPerBlock(proc, placed, costs, policy,
                                              theta_[id], pm.visits);

        double self = 0.0;
        for (ir::BlockId b = 0; b < proc.blockCount(); ++b) {
            self += pm.visits[b] * pm.blockCycles[b];
            pm.penaltyPerInvocation += pm.blockPenalty[b];
        }
        pm.selfPerInvocation = self + pm.penaltyPerInvocation;
    }

    baselineMeans_ = solveMeans(ir::kNoProc, 1.0, ir::kNoBlock);

    // Invocations per entry event: walk callers before callees.
    callRates_.assign(n, 0.0);
    callRates_[entry_] = 1.0;
    for (auto it = bottomUp_.rbegin(); it != bottomUp_.rend(); ++it) {
        double rate = callRates_[*it];
        if (rate == 0.0)
            continue;
        for (const auto &site : procs_[*it].calls)
            callRates_[site.callee] += rate * site.rate;
    }
}

std::vector<double>
Engine::solveMeans(ir::ProcId target, double scale,
                   ir::BlockId target_block) const
{
    std::vector<double> means(procs_.size(), 0.0);
    for (ir::ProcId id : bottomUp_) {
        const ProcModel &pm = procs_[id];
        double m = pm.selfPerInvocation;
        if (id == target) {
            double mass = target_block == ir::kNoBlock
                              ? pm.penaltyPerInvocation
                              : pm.blockPenalty[target_block];
            m -= (1.0 - scale) * mass;
        }
        for (const auto &site : pm.calls)
            m += site.rate * (means[site.callee] + site.farExtraCycles);
        means[id] = m;
    }
    return means;
}

double
Engine::whatIf(ir::ProcId proc, double dial) const
{
    CT_ASSERT(proc < procs_.size(), "whatIf: bad proc#", proc);
    CT_ASSERT(dial >= 0.0 && dial <= 1.0, "whatIf: dial ", dial,
              " outside [0, 1]");
    return solveMeans(proc, 1.0 - dial, ir::kNoBlock)[entry_];
}

double
Engine::whatIfBlock(ir::ProcId proc, ir::BlockId block, double dial) const
{
    CT_ASSERT(proc < procs_.size(), "whatIfBlock: bad proc#", proc);
    CT_ASSERT(block < procs_[proc].blockPenalty.size(),
              "whatIfBlock: bad block#", block);
    CT_ASSERT(dial >= 0.0 && dial <= 1.0, "whatIfBlock: dial ", dial,
              " outside [0, 1]");
    return solveMeans(proc, 1.0 - dial, block)[entry_];
}

double
Engine::callRate(ir::ProcId proc) const
{
    CT_ASSERT(proc < callRates_.size(), "callRate: bad proc#", proc);
    return callRates_[proc];
}

double
Engine::penaltyCyclesPerInvocation(ir::ProcId proc) const
{
    CT_ASSERT(proc < procs_.size(), "penaltyCyclesPerInvocation: bad proc#",
              proc);
    return procs_[proc].penaltyPerInvocation;
}

double
Engine::selfCyclesPerInvocation(ir::ProcId proc) const
{
    CT_ASSERT(proc < procs_.size(), "selfCyclesPerInvocation: bad proc#",
              proc);
    return procs_[proc].selfPerInvocation;
}

std::array<double, sim::kActivityCount>
Engine::baselineActivityPerEvent() const
{
    std::vector<std::array<double, sim::kActivityCount>> acts(
        procs_.size(), std::array<double, sim::kActivityCount>{});
    constexpr size_t kCpu = size_t(sim::Activity::CpuActive);
    for (ir::ProcId id : bottomUp_) {
        const ProcModel &pm = procs_[id];
        auto &a = acts[id];
        for (size_t b = 0; b < pm.visits.size(); ++b) {
            for (size_t k = 0; k < sim::kActivityCount; ++k)
                a[k] += pm.visits[b] * pm.blockActivity[b][k];
        }
        a[kCpu] += pm.penaltyPerInvocation;
        for (const auto &site : pm.calls) {
            for (size_t k = 0; k < sim::kActivityCount; ++k)
                a[k] += site.rate * acts[site.callee][k];
            a[kCpu] += site.rate * site.farExtraCycles;
        }
    }
    return acts[entry_];
}

double
Engine::baselineEnergyPerEvent(const sim::EnergyModel &energy) const
{
    auto act = baselineActivityPerEvent();
    double uj = 0.0;
    for (size_t k = 0; k < sim::kActivityCount; ++k) {
        uj += energy.currentUa(sim::Activity(k)) * energy.supplyVolts *
              act[k] / energy.clockHz;
    }
    return uj;
}

CausalProfile
Engine::profile(const ProfileOptions &options) const
{
    CT_SPAN("causal.profile");
    obs::StopwatchUs stopwatch;
    size_t solves = 0;

    CausalProfile out;
    out.workload =
        options.workload.empty() ? module_->name() : options.workload;
    out.baselineCyclesPerEvent = baselineCyclesPerEvent();
    out.baselineEnergyMicrojoulesPerEvent =
        baselineEnergyPerEvent(options.energy);

    out.dials = options.dials;
    for (double d : out.dials)
        CT_ASSERT(d >= 0.0 && d <= 1.0, "profile: dial ", d,
                  " outside [0, 1]");
    std::sort(out.dials.begin(), out.dials.end());
    out.dials.erase(std::unique(out.dials.begin(), out.dials.end()),
                    out.dials.end());
    if (out.dials.empty() || out.dials.back() != 1.0)
        out.dials.push_back(1.0);

    const double baseline = out.baselineCyclesPerEvent;
    // Cycles recovered per cycle of penalty removed: with a positive
    // baseline this is 1 (linearity); guard the degenerate empty module.
    auto speedupPct = [&](double cycles) {
        return baseline > 0.0 ? 100.0 * (baseline - cycles) / baseline : 0.0;
    };

    double totalFlat = 0.0;
    for (ir::ProcId id = 0; id < procs_.size(); ++id) {
        if (callRates_[id] <= 0.0)
            continue; // never invoked from the entry event
        ProcCausal pc;
        pc.proc = id;
        pc.name = module_->procedure(id).name();
        pc.callRate = callRates_[id];
        pc.selfCyclesPerInvocation = procs_[id].selfPerInvocation;
        pc.flatCyclesPerEvent = pc.callRate * pc.selfCyclesPerInvocation;
        pc.penaltyCyclesPerEvent =
            pc.callRate * procs_[id].penaltyPerInvocation;
        totalFlat += pc.flatCyclesPerEvent;

        for (double d : out.dials) {
            double cycles = whatIf(id, d);
            ++solves;
            pc.curve.push_back({d, cycles, speedupPct(cycles)});
        }
        pc.deltaCyclesPerEvent = baseline - pc.curve.back().cyclesPerEvent;
        pc.virtualSpeedupPct = pc.curve.back().virtualSpeedupPct;
        pc.deltaEnergyMicrojoulesPerEvent =
            pc.deltaCyclesPerEvent * options.energy.cpuActiveUa *
            options.energy.supplyVolts / options.energy.clockHz;
        out.totalPenaltyCyclesPerEvent += pc.penaltyCyclesPerEvent;
        out.procs.push_back(std::move(pc));
    }

    for (auto &pc : out.procs) {
        pc.flatSharePct =
            totalFlat > 0.0 ? 100.0 * pc.flatCyclesPerEvent / totalFlat
                            : 0.0;
    }

    // 1-based ranks under both attributions, ProcId as the tiebreak so
    // exports are deterministic.
    std::vector<size_t> idx(out.procs.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    auto rankBy = [&](auto key, auto assign) {
        std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
            double ka = key(out.procs[a]), kb = key(out.procs[b]);
            if (ka != kb)
                return ka > kb;
            return out.procs[a].proc < out.procs[b].proc;
        });
        for (size_t r = 0; r < idx.size(); ++r)
            assign(out.procs[idx[r]], r + 1);
    };
    rankBy([](const ProcCausal &p) { return p.flatCyclesPerEvent; },
           [](ProcCausal &p, size_t r) { p.flatRank = r; });
    rankBy([](const ProcCausal &p) { return p.deltaCyclesPerEvent; },
           [](ProcCausal &p, size_t r) { p.causalRank = r; });
    for (const auto &pc : out.procs) {
        if (pc.flatRank != pc.causalRank)
            ++out.rankDisagreements;
    }
    std::sort(out.procs.begin(), out.procs.end(),
              [](const ProcCausal &a, const ProcCausal &b) {
                  return a.causalRank < b.causalRank;
              });

    if (options.perBlock) {
        for (ir::ProcId id = 0; id < procs_.size(); ++id) {
            if (callRates_[id] <= 0.0)
                continue;
            const ir::Procedure &proc = module_->procedure(id);
            for (ir::BlockId b : proc.branchBlocks()) {
                double cycles = whatIfBlock(id, b, 1.0);
                ++solves;
                BlockCausal bc;
                bc.proc = id;
                bc.block = b;
                bc.procName = proc.name();
                bc.deltaCyclesPerEvent = baseline - cycles;
                bc.virtualSpeedupPct = speedupPct(cycles);
                out.blocks.push_back(std::move(bc));
            }
        }
        std::sort(out.blocks.begin(), out.blocks.end(),
                  [](const BlockCausal &a, const BlockCausal &b) {
                      if (a.deltaCyclesPerEvent != b.deltaCyclesPerEvent)
                          return a.deltaCyclesPerEvent >
                                 b.deltaCyclesPerEvent;
                      if (a.proc != b.proc)
                          return a.proc < b.proc;
                      return a.block < b.block;
                  });
    }

    if (obs::metricsEnabled()) {
        auto &m = obs::metrics();
        m.counter("causal.procs_ranked").add(out.procs.size());
        m.counter("causal.blocks_ranked").add(out.blocks.size());
        m.counter("causal.solves").add(solves);
        m.counter("causal.rank_disagreements").add(out.rankDisagreements);
        m.gauge("causal.baseline_cycles_per_event").set(baseline);
        if (!out.procs.empty()) {
            m.gauge("causal.top_virtual_speedup_pct")
                .set(out.procs.front().virtualSpeedupPct);
        }
        m.histogram("causal.profile_us").record(stopwatch.elapsedUs());
    }
    return out;
}

std::string
CausalProfile::toJson() const
{
    std::string j = "{";
    j += "\"baseline_cycles_per_event\":" + num(baselineCyclesPerEvent);
    j += ",\"baseline_energy_uj_per_event\":" +
         num(baselineEnergyMicrojoulesPerEvent);
    j += ",\"blocks\":[";
    for (size_t i = 0; i < blocks.size(); ++i) {
        const BlockCausal &b = blocks[i];
        if (i)
            j += ",";
        j += "{\"block\":" + std::to_string(b.block);
        j += ",\"delta_cycles_per_event\":" + num(b.deltaCyclesPerEvent);
        j += ",\"proc\":" + std::to_string(b.proc);
        j += ",\"proc_name\":\"" + jsonEscape(b.procName) + "\"";
        j += ",\"virtual_speedup_pct\":" + num(b.virtualSpeedupPct) + "}";
    }
    j += "],\"dials\":[";
    for (size_t i = 0; i < dials.size(); ++i) {
        if (i)
            j += ",";
        j += num(dials[i]);
    }
    j += "],\"procs\":[";
    for (size_t i = 0; i < procs.size(); ++i) {
        const ProcCausal &p = procs[i];
        if (i)
            j += ",";
        j += "{\"call_rate\":" + num(p.callRate);
        j += ",\"causal_rank\":" + std::to_string(p.causalRank);
        j += ",\"curve\":[";
        for (size_t k = 0; k < p.curve.size(); ++k) {
            const DialPoint &d = p.curve[k];
            if (k)
                j += ",";
            j += "{\"cycles_per_event\":" + num(d.cyclesPerEvent);
            j += ",\"dial\":" + num(d.dial);
            j += ",\"virtual_speedup_pct\":" + num(d.virtualSpeedupPct) +
                 "}";
        }
        j += "],\"delta_cycles_per_event\":" + num(p.deltaCyclesPerEvent);
        j += ",\"delta_energy_uj_per_event\":" +
             num(p.deltaEnergyMicrojoulesPerEvent);
        j += ",\"flat_cycles_per_event\":" + num(p.flatCyclesPerEvent);
        j += ",\"flat_rank\":" + std::to_string(p.flatRank);
        j += ",\"flat_share_pct\":" + num(p.flatSharePct);
        j += ",\"name\":\"" + jsonEscape(p.name) + "\"";
        j += ",\"penalty_cycles_per_event\":" + num(p.penaltyCyclesPerEvent);
        j += ",\"proc\":" + std::to_string(p.proc);
        j += ",\"self_cycles_per_invocation\":" +
             num(p.selfCyclesPerInvocation);
        j += ",\"virtual_speedup_pct\":" + num(p.virtualSpeedupPct) + "}";
    }
    j += "],\"rank_disagreements\":" + std::to_string(rankDisagreements);
    j += ",\"total_penalty_cycles_per_event\":" +
         num(totalPenaltyCyclesPerEvent);
    j += ",\"workload\":\"" + jsonEscape(workload) + "\"}";
    return j;
}

void
CausalProfile::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << toJson() << "\n";
}

void
CausalProfile::writeCsv(const std::string &path) const
{
    CsvWriter csv(path);
    csv.row("workload", "proc", "name", "causal_rank", "flat_rank",
            "call_rate", "self_cycles_per_invocation",
            "flat_cycles_per_event", "flat_share_pct",
            "penalty_cycles_per_event", "delta_cycles_per_event",
            "delta_energy_uj_per_event", "dial", "cycles_per_event",
            "virtual_speedup_pct");
    for (const ProcCausal &p : procs) {
        for (const DialPoint &d : p.curve) {
            csv.row(workload, size_t(p.proc), p.name, p.causalRank,
                    p.flatRank, p.callRate, p.selfCyclesPerInvocation,
                    p.flatCyclesPerEvent, p.flatSharePct,
                    p.penaltyCyclesPerEvent, p.deltaCyclesPerEvent,
                    p.deltaEnergyMicrojoulesPerEvent, d.dial,
                    d.cyclesPerEvent, d.virtualSpeedupPct);
        }
    }
}

std::vector<GateEntry>
rankingGate(const Engine &engine, double min_fraction, size_t max_procs)
{
    CT_ASSERT(min_fraction >= 0.0, "rankingGate: negative min_fraction");
    const ir::Module &module = engine.module();
    const double baseline = engine.baselineCyclesPerEvent();
    const double floor = min_fraction * baseline;

    std::vector<GateEntry> out;
    for (ir::ProcId id = 0; id < module.procedureCount(); ++id) {
        if (engine.callRate(id) <= 0.0)
            continue;
        double delta = baseline - engine.whatIf(id, 1.0);
        if (delta < floor || delta <= 0.0)
            continue;
        GateEntry entry;
        entry.proc = id;
        entry.name = module.procedure(id).name();
        entry.deltaCyclesPerEvent = delta;
        entry.virtualSpeedupPct =
            baseline > 0.0 ? 100.0 * delta / baseline : 0.0;
        out.push_back(std::move(entry));
    }
    std::sort(out.begin(), out.end(),
              [](const GateEntry &a, const GateEntry &b) {
                  if (a.deltaCyclesPerEvent != b.deltaCyclesPerEvent)
                      return a.deltaCyclesPerEvent > b.deltaCyclesPerEvent;
                  return a.proc < b.proc;
              });
    if (max_procs > 0 && out.size() > max_procs)
        out.resize(max_procs);
    return out;
}

} // namespace ct::causal
