/**
 * @file
 * E5 / Table 2 — misprediction reduction: dynamic conditional-branch
 * misprediction rates under each placement, per workload. Expected
 * shape: tomography-guided placement recovers (nearly) the oracle's
 * reduction and clearly beats natural / random / dfs.
 */

#include "common.hh"

#include "exec/thread_pool.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"samples", "eval", "ticks", "seed", "estimator", "jobs"});

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.evalInvocations = size_t(args.getLong("eval", 5000));
    config.sim.cyclesPerTick = uint64_t(args.getLong("ticks", 4));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.estimator = parseEstimator(args.get("estimator", "em"));
    // The fan-out here is per workload; each pipeline runs serially so
    // the pool is never oversubscribed.
    config.jobs = 1;

    TablePrinter table("Table 2: misprediction rate by placement");
    table.setHeader({"workload", "natural", "random", "dfs", "tomography",
                     "perfect", "reduction vs natural"});

    auto suite = workloads::allWorkloads();
    exec::ThreadPool pool(jobsFromArgs(args));
    auto results = exec::parallelMap(pool, suite.size(), [&](size_t i) {
        api::TomographyPipeline pipeline(suite[i], config);
        return pipeline.run();
    });

    double mean_reduction = 0.0;
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &result = results[i];
        double reduction = result.mispredictReduction();
        mean_reduction += reduction;
        table.row(suite[i].name,
                  result.outcome("natural").mispredictRate,
                  result.outcome("random").mispredictRate,
                  result.outcome("dfs").mispredictRate,
                  result.outcome("tomography").mispredictRate,
                  result.outcome("perfect").mispredictRate, reduction);
    }
    table.row("suite mean", "", "", "", "", "",
              mean_reduction / double(suite.size()));
    emit(table, "table2_mispred");
    return 0;
}
