/**
 * @file
 * E12 — telemetry collection under radio faults: ship each mote's
 * timing trace through the simulated lossy link (ct::net) and measure
 * what the sink's online estimators recover, sweeping frame loss with
 * retransmissions on and off. Expected shape: with retransmits on,
 * delivery stays complete and sink estimates match the mote-side
 * ground truth until loss gets extreme; fire-and-forget degrades
 * gracefully — the delivered fraction tracks 1 - loss and estimate
 * error grows slowly, because fewer samples, not corrupted samples,
 * is the failure mode (CRC rejects every bit-flipped frame).
 *
 * The CSV is bit-identical for every --jobs value (per-mote seeds
 * derive from the mote id alone); wall-clock throughput is printed to
 * stderr only, never into the CSV, so CI can diff runs.
 */

#include "common.hh"

#include "net/fleet.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "motes", "samples", "seed", "jobs", "mtu",
                  "loss", "dup", "reorder", "bitflip", "burst", "retries",
                  "no-retransmit"});
    auto workload = workloads::workloadByName(
        args.get("workload", "event_dispatch"));
    size_t motes = size_t(args.getLong("motes", 8));
    size_t samples = size_t(args.getLong("samples", 800));
    uint64_t seed = uint64_t(args.getLong("seed", 1));

    std::vector<double> losses = {0.0, 0.01, 0.05, 0.1, 0.2, 0.4};
    if (args.has("loss"))
        losses = {args.getDouble("loss", 0.0)};
    std::vector<bool> retransmit_modes = {true, false};
    if (args.getBool("no-retransmit", false))
        retransmit_modes = {false};

    net::FleetConfig base;
    base.motes = motes;
    base.invocations = samples;
    base.seed = seed;
    base.jobs = jobsFromArgs(args);
    base.mtu = size_t(args.getLong("mtu", net::kDefaultMtu));
    base.channel.duplicateRate = args.getDouble("dup", 0.02);
    base.channel.reorderWindow = size_t(args.getLong("reorder", 3));
    base.channel.bitFlipRate = args.getDouble("bitflip", 0.01);
    base.channel.burstLoss = args.getBool("burst", false);
    base.uplink.maxRetries = size_t(args.getLong("retries", 16));

    TablePrinter table("E12: telemetry collection under radio faults (" +
                       workload.name + ", " + std::to_string(motes) +
                       " motes)");
    table.setHeader({"loss", "retransmit", "sent", "delivered",
                     "delivered %", "complete motes", "retrans", "skipped",
                     "crc rejects", "max |err|", "mean |err|"});

    for (double loss : losses) {
        for (bool retransmit : retransmit_modes) {
            net::FleetConfig config = base;
            config.channel.dropRate = loss;
            config.uplink.retransmit = retransmit;

            obs::StopwatchUs watch;
            auto fleet = net::runFleet(workload, config);
            double elapsed_s = double(watch.elapsedUs()) / 1e6;

            uint64_t retrans = 0, skipped = 0, rejects = 0;
            for (const auto &mote : fleet.motes) {
                retrans += mote.uplink.retransmissions;
                skipped += mote.collector.skippedPackets;
                rejects += mote.collector.rejected;
            }
            size_t sent = fleet.totalRecordsSent();
            size_t delivered = fleet.totalRecordsDelivered();
            double delivered_pct =
                sent ? 100.0 * double(delivered) / double(sent) : 0.0;

            table.row(loss, retransmit ? "on" : "off", sent, delivered,
                      delivered_pct, fleet.completeMotes(), retrans,
                      skipped, rejects, fleet.maxThetaError(),
                      fleet.meanThetaError());
            // Throughput is wall-clock and thus nondeterministic: report
            // it on the side, never in the diffable table/CSV.
            if (elapsed_s > 0.0) {
                inform("loss ", loss, " retransmit ",
                       retransmit ? "on" : "off", ": ",
                       uint64_t(double(delivered) / elapsed_s),
                       " records/s sink-side");
            }
        }
    }
    emit(table, "net_collector");
    return 0;
}
