/**
 * @file
 * E14 — what-if causal profiling: for every suite workload, the ranked
 * analytic virtual speedups (ct::causal) next to the ground truth of
 * actually re-simulating each procedure with its placement penalties
 * zeroed (SimConfig::zeroCtrlPenalty). Expected shape: the agreement
 * error is floating-point noise (the chain is parameterized with the
 * run's own empirical branch frequencies, so the analytic deltas are
 * exact — docs/CAUSAL.md), and the causal ranking disagrees with the
 * flat self-time ranking on a meaningful fraction of procedures.
 *
 * The CSV is deterministic; solver-vs-resimulation wall clock goes to
 * stderr only.
 */

#include "common.hh"

#include <chrono>
#include <iostream>

#include "causal/causal.hh"
#include "sim/machine.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;
using namespace ct::bench;

namespace {

double
microsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"invocations", "seed"});
    size_t invocations = size_t(args.getLong("invocations", 2000));
    uint64_t seed = uint64_t(args.getLong("seed", 1));

    TablePrinter table(
        "E14: analytic what-if deltas vs zero-penalty re-simulation");
    table.setHeader({"workload", "procedure", "call rate", "flat rank",
                     "causal rank", "delta cyc/event", "speedup %",
                     "delta uJ/event", "resim delta", "agree err"});

    size_t disagreements = 0, procs_total = 0;
    double max_agree_err = 0.0;
    double analytic_us_total = 0.0, resim_us_total = 0.0;

    for (const auto &workload : workloads::allWorkloads()) {
        // Deployment conditions: probes off, natural layout.
        sim::SimConfig config;
        config.timingProbes = false;
        auto lowered = sim::lowerModule(*workload.module);

        auto simulate = [&](const std::vector<uint8_t> &zero) {
            auto run_config = config;
            run_config.zeroCtrlPenalty = zero;
            auto inputs = workload.makeInputs(seed);
            sim::Simulator simulator(*workload.module, lowered, run_config,
                                     *inputs, seed ^ 0x5eed);
            return simulator.run(workload.entry, invocations);
        };
        auto base = simulate({});
        double events = double(base.invocations[workload.entry]);
        CT_ASSERT(events > 0, "workload ", workload.name,
                  " never invoked its entry");

        // The engine, parameterized from the run's own edge profile.
        auto theta =
            causal::thetaFromProfile(*workload.module, base.profile);
        causal::Engine engine(*workload.module, lowered, config.costs,
                              config.policy, workload.entry,
                              std::move(theta));

        auto analytic_start = std::chrono::steady_clock::now();
        auto profile = engine.profile({.workload = workload.name});
        analytic_us_total += microsSince(analytic_start);

        // Ground truth: one full re-simulation per ranked procedure.
        auto resim_start = std::chrono::steady_clock::now();
        for (const auto &p : profile.procs) {
            std::vector<uint8_t> zero(workload.module->procedureCount(),
                                      0);
            zero[p.proc] = 1;
            auto counter = simulate(zero);
            double resim_delta =
                (double(base.procCycles[workload.entry]) -
                 double(counter.procCycles[workload.entry])) /
                events;
            double err = std::abs(resim_delta - p.deltaCyclesPerEvent);
            max_agree_err = std::max(max_agree_err, err);
            table.row(workload.name, p.name, p.callRate, p.flatRank,
                      p.causalRank, p.deltaCyclesPerEvent,
                      p.virtualSpeedupPct,
                      p.deltaEnergyMicrojoulesPerEvent, resim_delta, err);
        }
        resim_us_total += microsSince(resim_start);

        disagreements += profile.rankDisagreements;
        procs_total += profile.procs.size();
    }

    table.row("suite", "", "", "", "", "", "", "", "",
              std::string("max err ") + formatDouble(max_agree_err, 9));
    emit(table, "causal_whatif");

    std::cerr << "rank disagreements: " << disagreements << " of "
              << procs_total << " ranked procedures\n"
              << "analytic profiles (all procs x dials): "
              << formatDouble(analytic_us_total, 0) << " us; re-simulating "
              << procs_total
              << " counterfactuals: " << formatDouble(resim_us_total, 0)
              << " us (" << formatDouble(resim_us_total /
                                             std::max(1.0,
                                                      analytic_us_total),
                                         1)
              << "x)\n";
    return 0;
}
