/**
 * @file
 * E1 / Table 1 — benchmark characteristics: the static structure of
 * every workload in the suite (procedures, blocks, instructions,
 * conditional branches, natural loops, acyclic path count) plus its
 * input model.
 */

#include "common.hh"

#include "ir/analysis.hh"

using namespace ct;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {});
    (void)args;

    TablePrinter table("Table 1: workload characteristics");
    table.setHeader({"workload", "procs", "blocks", "insts", "branches",
                     "loops", "paths", "inputs"});

    for (const auto &workload : workloads::allWorkloads()) {
        size_t loops = 0;
        uint64_t paths = 0;
        size_t branches = 0;
        for (const auto &proc : workload.module->procedures()) {
            loops += ir::findNaturalLoops(proc).size();
            paths += ir::countAcyclicPaths(proc);
            branches += proc.branchBlocks().size();
        }
        table.row(workload.name, workload.module->procedureCount(),
                  workload.module->totalBlocks(),
                  workload.module->totalInsts(), branches, loops,
                  size_t(paths), workload.inputNotes);
    }
    bench::emit(table, "table1_workloads");
    return 0;
}
