/**
 * @file
 * E1 / Table 1 — benchmark characteristics: the static structure of
 * every workload in the suite (procedures, blocks, instructions,
 * conditional branches, natural loops, acyclic path count) plus its
 * input model.
 */

#include "common.hh"

#include "exec/thread_pool.hh"
#include "ir/analysis.hh"

using namespace ct;

namespace {

struct Characteristics
{
    size_t loops = 0;
    uint64_t paths = 0;
    size_t branches = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"jobs"});

    TablePrinter table("Table 1: workload characteristics");
    table.setHeader({"workload", "procs", "blocks", "insts", "branches",
                     "loops", "paths", "inputs"});

    auto suite = workloads::allWorkloads();
    exec::ThreadPool pool(bench::jobsFromArgs(args));
    auto rows = exec::parallelMap(pool, suite.size(), [&](size_t i) {
        Characteristics c;
        for (const auto &proc : suite[i].module->procedures()) {
            c.loops += ir::findNaturalLoops(proc).size();
            c.paths += ir::countAcyclicPaths(proc);
            c.branches += proc.branchBlocks().size();
        }
        return c;
    });

    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &workload = suite[i];
        table.row(workload.name, workload.module->procedureCount(),
                  workload.module->totalBlocks(),
                  workload.module->totalInsts(), rows[i].branches,
                  rows[i].loops, size_t(rows[i].paths), workload.inputNotes);
    }
    bench::emit(table, "table1_workloads");
    return 0;
}
