/**
 * @file
 * E3 / Fig. 3 — convergence: estimation error as a function of the
 * number of end-to-end timing samples. One simulation per workload at
 * the largest size; smaller points reuse truncated prefixes of the same
 * trace so the series is monotone in information, not in luck.
 * Expected shape: MAE falls roughly as 1/sqrt(n) and flattens at the
 * aliasing/quantization floor.
 */

#include "common.hh"

#include "exec/thread_pool.hh"
#include "util/str.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"ticks", "seed", "max-samples", "jobs"});
    uint64_t ticks = uint64_t(args.getLong("ticks", 4));
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    size_t max_samples = size_t(args.getLong("max-samples", 10000));
    size_t jobs = jobsFromArgs(args);

    std::vector<size_t> points = {10, 30, 100, 300, 1000, 3000, 10000};
    while (!points.empty() && points.back() > max_samples)
        points.pop_back();

    auto suite = workloads::allWorkloads();

    TablePrinter table("Fig 3: MAE vs number of timing samples (em, " +
                       std::to_string(ticks) + " cycles/tick)");
    std::vector<std::string> header = {"samples", "suite mean"};
    for (const auto &workload : suite)
        header.push_back(workload.name);
    table.setHeader(header);

    // One full-size campaign per workload, reused across sample sizes.
    auto full = runCampaigns(suite, points.back(), ticks,
                             tomography::EstimatorKind::Em, seed, {}, jobs);

    exec::ThreadPool pool(jobs);
    for (size_t n : points) {
        auto maes = exec::parallelMap(pool, suite.size(), [&](size_t w) {
            // Single-pass prefix cut across every procedure — the old
            // per-proc chained truncated() copied the whole trace once
            // per procedure.
            auto cut = full[w].run.trace.truncatedAll(n);
            auto estimate = estimateFromTrace(suite[w], cut, ticks,
                                              tomography::EstimatorKind::Em);
            return scoreAccuracy(suite[w], full[w].run, estimate).mae;
        });

        std::vector<std::string> row = {std::to_string(n), ""};
        double sum = 0.0;
        for (double mae : maes) {
            sum += mae;
            row.push_back(formatDouble(mae, 4));
        }
        row[1] = formatDouble(sum / double(suite.size()), 4);
        table.addRow(row);
    }
    emit(table, "fig3_samples");
    return 0;
}
