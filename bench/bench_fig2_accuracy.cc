/**
 * @file
 * E2 / Fig. 2 — estimation accuracy: per-workload branch-probability
 * error (MAE / max) for each estimator, at the default mote timer
 * resolution. The paper's claim is that boundary-only timing recovers
 * the Markov parameters; the expected shape is small MAE everywhere
 * except deliberately aliased workloads (median_filter) and
 * quantization-starved ones (blink at coarse timers).
 */

#include "common.hh"

#include <limits>

#include "exec/thread_pool.hh"
#include "tomography/timing_model.hh"

using namespace ct;
using namespace ct::bench;

namespace {

/**
 * Smallest per-branch timing separation (in ticks) of the workload's
 * entry procedure under the true profile — the identifiability floor
 * the MAE columns should correlate with.
 */
double
minSeparationTicks(const workloads::Workload &workload,
                   const sim::RunResult &run, uint64_t ticks)
{
    sim::SimConfig config;
    auto lowered = sim::lowerModule(*workload.module);
    auto means = tomography::meanCyclesBottomUp(
        *workload.module, lowered, config.costs, config.policy, ticks,
        run.profile, 2.0 * double(config.costs.timerRead));
    const auto &proc = workload.entryProc();
    tomography::TimingModel model(proc, lowered.procs[workload.entry],
                                  config.costs, config.policy, ticks, means,
                                  2.0 * double(config.costs.timerRead));
    auto theta = model.thetaFromProfile(run.profile[workload.entry]);
    double best = std::numeric_limits<double>::infinity();
    for (const auto &diag : model.branchDiagnostics(theta))
        best = std::min(best, diag.separationTicks);
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples", "ticks", "seed", "jobs"});
    size_t samples = size_t(args.getLong("samples", 2000));
    uint64_t ticks = uint64_t(args.getLong("ticks", 4));
    uint64_t seed = uint64_t(args.getLong("seed", 1));

    TablePrinter table("Fig 2: branch-probability estimation error (" +
                       std::to_string(samples) + " samples, " +
                       std::to_string(ticks) + " cycles/tick)");
    table.setHeader({"workload", "branches", "linear MAE", "em MAE",
                     "moment MAE", "em max err", "em aliased mass",
                     "min sep (ticks)"});

    struct Row
    {
        size_t branches;
        double linearMae, emMae, momentMae, emMax, aliased, minSep;
    };

    auto suite = workloads::allWorkloads();
    exec::ThreadPool pool(jobsFromArgs(args));
    auto rows = exec::parallelMap(pool, suite.size(), [&](size_t i) {
        const auto &workload = suite[i];
        auto linear = runCampaign(workload, samples, ticks,
                                  tomography::EstimatorKind::Linear, seed);
        auto em = runCampaign(workload, samples, ticks,
                              tomography::EstimatorKind::Em, seed);
        auto moment = runCampaign(workload, samples, ticks,
                                  tomography::EstimatorKind::Moment, seed);

        double aliased = 0.0;
        for (const auto &result : em.estimate.results)
            aliased = std::max(aliased, result.aliasedMass);

        return Row{em.accuracy.branches, linear.accuracy.mae,
                   em.accuracy.mae, moment.accuracy.mae,
                   em.accuracy.maxError, aliased,
                   minSeparationTicks(workload, em.run, ticks)};
    });

    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &r = rows[i];
        table.row(suite[i].name, r.branches, r.linearMae, r.emMae,
                  r.momentMae, r.emMax, r.aliased, r.minSep);
    }
    emit(table, "fig2_accuracy");
    return 0;
}
