/**
 * @file
 * E7 / Table 3 — profiling overhead: what it costs to *collect* the
 * profile, comparing conventional edge-counter instrumentation (naive
 * and spanning-tree-optimized) against Code Tomography's two timer
 * reads per procedure invocation. Expected shape: tomography's runtime
 * overhead is a small fraction of instrumentation's, and it needs no
 * per-edge RAM counters — the paper's motivating resource argument.
 */

#include "common.hh"

#include "exec/thread_pool.hh"
#include "net/packet.hh"
#include "profiler/instrument.hh"
#include "profiler/plan.hh"
#include "trace/wire_format.hh"

using namespace ct;
using namespace ct::bench;

namespace {

/** Run a module (not necessarily the workload's own) once. */
sim::RunResult
runModule(const ir::Module &module, ir::ProcId entry,
          const workloads::Workload &workload, bool probes, size_t n,
          uint64_t seed)
{
    sim::SimConfig config;
    config.timingProbes = probes;
    config.maxGapCycles = 0;
    config.cyclesPerTick = 4;
    auto inputs = workload.makeInputs(seed);
    sim::Simulator simulator(module, sim::lowerModule(module), config,
                             *inputs, seed ^ 0x0f);
    return simulator.run(entry, n);
}

double
pct(uint64_t value, uint64_t base)
{
    return base ? 100.0 * (double(value) - double(base)) / double(base)
                : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples", "seed", "jobs"});
    size_t samples = size_t(args.getLong("samples", 2000));
    uint64_t seed = uint64_t(args.getLong("seed", 1));

    TablePrinter table("Table 3: profile-collection overhead");
    table.setHeader({"workload", "clean cycles", "tomo probes %",
                     "tree instr %", "all-edges instr %", "tree RAM B",
                     "all RAM B", "tomo RAM B", "tree code +slots",
                     "all code +slots", "wire B/event", "framed B/event"});

    struct Row
    {
        uint64_t cleanCycles;
        double probedPct, treePct, allPct;
        size_t treeRam, allRam, treeSlots, allSlots, wireBytes;
        double framedBytes;
    };

    auto suite = workloads::allWorkloads();
    exec::ThreadPool pool(jobsFromArgs(args));
    auto rows = exec::parallelMap(pool, suite.size(), [&](size_t i) {
        const auto &workload = suite[i];
        const auto &module = *workload.module;
        auto clean = runModule(module, workload.entry, workload, false,
                               samples, seed);
        auto probed = runModule(module, workload.entry, workload, true,
                                samples, seed);

        auto plan_tree = profiler::planModule(
            module, profiler::ProfilerMode::SpanningTree, 512);
        auto plan_all = profiler::planModule(
            module, profiler::ProfilerMode::AllEdges, 512);
        auto prog_tree = profiler::instrumentModule(module, plan_tree);
        auto prog_all = profiler::instrumentModule(module, plan_all);
        auto run_tree = runModule(prog_tree.module, workload.entry, workload,
                                  false, samples, seed);
        auto run_all = runModule(prog_all.module, workload.entry, workload,
                                 false, samples, seed);

        auto slots = [](const ir::Module &m) {
            auto lowered = sim::lowerModule(m);
            size_t total = 0;
            for (ir::ProcId id = 0; id < m.procedureCount(); ++id)
                total += lowered.procs[id].codeSlots(m.procedure(id));
            return total;
        };
        size_t base_slots = slots(module);

        Row row;
        row.cleanCycles = clean.totalCycles;
        row.probedPct = pct(probed.totalCycles, clean.totalCycles);
        row.treePct = pct(run_tree.totalCycles, clean.totalCycles);
        row.allPct = pct(run_all.totalCycles, clean.totalCycles);
        row.treeRam = plan_tree.counterBytes();
        row.allRam = plan_all.counterBytes();
        row.treeSlots = slots(prog_tree.module) - base_slots;
        row.allSlots = slots(prog_all.module) - base_slots;
        row.wireBytes = trace::bytesPerRecord(probed.trace);
        // What the same trace costs on air once split into radio
        // frames with the ct::net packet header (see docs/NETWORK.md).
        row.framedBytes =
            net::bytesPerRecordFramed(probed.trace, net::kDefaultMtu);
        return row;
    });

    // Tomography ships timestamps over the radio / a log buffer; a
    // 4-entry staging buffer of 4-byte records is generous.
    constexpr size_t tomo_ram = 16;

    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &r = rows[i];
        table.row(suite[i].name, r.cleanCycles, r.probedPct, r.treePct,
                  r.allPct, r.treeRam, r.allRam, tomo_ram, r.treeSlots,
                  r.allSlots, r.wireBytes, r.framedBytes);
    }
    emit(table, "table3_overhead");
    return 0;
}
