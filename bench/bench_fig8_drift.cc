/**
 * @file
 * E11 / Fig. 8 (extension) — tracking a drifting environment: the
 * deployed-network reality that branch probabilities change (diurnal
 * sensor patterns, shifting traffic). The environment switches between
 * three regimes; at checkpoints we report each estimator's error
 * against the *current* regime's truth. Batch EM over all history and
 * decaying-step streaming average across regimes; forgetting-mode
 * streaming follows.
 */

#include "common.hh"

#include <cmath>

#include "exec/thread_pool.hh"
#include "tomography/streaming.hh"
#include "util/str.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"seed", "phase-len", "forgetting", "jobs"});
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    size_t phase_len = size_t(args.getLong("phase-len", 800));
    double forgetting = args.getDouble("forgetting", 0.05);
    exec::ThreadPool pool(jobsFromArgs(args));

    auto workload = workloads::workloadByName("sense_and_send");
    sim::SimConfig config;
    config.cyclesPerTick = 1;

    // Three regimes: quiet, active, quiet again.
    struct Phase
    {
        double mean;
        sim::RunResult run;
        double truth = 0.0;
    };
    std::vector<Phase> phases = {{500.0, {}, 0}, {650.0, {}, 0},
                                 {500.0, {}, 0}};
    // Each phase's regime simulation is independent; fan them out.
    pool.parallelFor(phases.size(), [&](size_t p) {
        auto inputs = std::make_unique<sim::ScriptedInputs>(seed + p);
        inputs->setChannel(0, makeGaussian(phases[p].mean, 80.0));
        sim::Simulator simulator(*workload.module,
                                 sim::lowerModule(*workload.module), config,
                                 *inputs, seed ^ (0xd1 + p));
        phases[p].run = simulator.run(workload.entry, phase_len);
        phases[p].truth = phases[p].run.profile[workload.entry]
                              .takenProbability(
                                  workload.entryProc(),
                                  workload.entryProc().branchBlocks()[0]);
    });

    auto lowered = sim::lowerModule(*workload.module);
    std::vector<double> no_callees(workload.module->procedureCount(), 0.0);
    tomography::TimingModel model(
        workload.entryProc(), lowered.procs[workload.entry], config.costs,
        config.policy, 1, no_callees, 2.0 * config.costs.timerRead);

    tomography::StreamingEstimator decaying(model);
    tomography::StreamingEstimator tracking(model, {}, 0.7, forgetting);
    std::vector<int64_t> history;

    TablePrinter table(
        "Fig 8: tracking a drifting branch probability (sense_and_send)");
    table.setHeader({"events", "regime truth", "batch-all err",
                     "stream decaying err", "stream forgetting (" +
                         formatDouble(forgetting, 2) + ") err"});

    // The streaming pass is inherently sequential (stateful online
    // estimators), so it records the per-checkpoint state; the batch-EM
    // re-estimates over each history prefix are independent and run in
    // parallel afterwards.
    struct Checkpoint
    {
        size_t events;
        double truth;
        double decayingErr;
        double trackingErr;
    };
    std::vector<Checkpoint> checkpoints;
    size_t events = 0;
    for (const auto &phase : phases) {
        auto durations = phase.run.trace.durations(workload.entry);
        size_t checkpoint = durations.size() / 2;
        for (size_t i = 0; i < durations.size(); ++i) {
            decaying.observe(durations[i]);
            tracking.observe(durations[i]);
            history.push_back(durations[i]);
            ++events;
            if (i + 1 == checkpoint || i + 1 == durations.size()) {
                checkpoints.push_back(
                    {events, phase.truth,
                     std::abs(decaying.theta()[0] - phase.truth),
                     std::abs(tracking.theta()[0] - phase.truth)});
            }
        }
    }

    auto batch = tomography::makeEstimator(tomography::EstimatorKind::Em,
                                           {});
    auto batch_errors =
        exec::parallelMap(pool, checkpoints.size(), [&](size_t i) {
            std::vector<int64_t> prefix(
                history.begin(),
                history.begin() + ptrdiff_t(checkpoints[i].events));
            auto full = batch->estimate(model, prefix);
            return std::abs(full.theta[0] - checkpoints[i].truth);
        });

    for (size_t i = 0; i < checkpoints.size(); ++i) {
        table.row(checkpoints[i].events, checkpoints[i].truth,
                  batch_errors[i], checkpoints[i].decayingErr,
                  checkpoints[i].trackingErr);
    }
    emit(table, "fig8_drift");
    return 0;
}
