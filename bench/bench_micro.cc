/**
 * @file
 * E9 — google-benchmark microbenchmarks of the harness itself: mote
 * simulation throughput, absorbing-chain math, path enumeration, and
 * the estimators. These are not paper results; they document that the
 * reproduction is fast enough to sweep.
 */

#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/pipeline.hh"
#include "exec/thread_pool.hh"
#include "markov/paths.hh"
#include "sim/machine.hh"
#include "tomography/estimator.hh"
#include "tomography/streaming.hh"
#include "workloads/workload.hh"

using namespace ct;

namespace {

/** --jobs value (resolved); settable before benchmark::Initialize. */
size_t g_jobs = 1;

void
BM_SimulateCrc16(benchmark::State &state)
{
    auto workload = workloads::makeCrc16();
    sim::SimConfig config;
    config.maxGapCycles = 0;
    auto inputs = workload.makeInputs(1);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, 2);
    for (auto _ : state) {
        auto result = simulator.run(workload.entry, 100);
        benchmark::DoNotOptimize(result.totalCycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_SimulateCrc16);

void
BM_FundamentalMatrix(benchmark::State &state)
{
    const size_t n = size_t(state.range(0));
    markov::AbsorbingChain chain(n);
    for (size_t i = 0; i + 1 < n; ++i) {
        chain.setTransition(i, i + 1, 0.7);
        if (i > 0)
            chain.setTransition(i, i - 1, 0.2);
    }
    for (auto _ : state) {
        auto matrix = chain.fundamentalMatrix();
        benchmark::DoNotOptimize(matrix.at(0, n - 1));
    }
}
BENCHMARK(BM_FundamentalMatrix)->Arg(8)->Arg(16)->Arg(32);

void
BM_PathEnumerationCrc16(benchmark::State &state)
{
    auto workload = workloads::makeCrc16();
    auto lowered = sim::lowerModule(*workload.module);
    std::vector<double> no_callees(workload.module->procedureCount(), 0.0);
    tomography::TimingModel model(
        workload.entryProc(), lowered.procs[workload.entry],
        sim::telosCostModel(), sim::PredictPolicy::NotTaken, 4, no_callees,
        4.0);
    std::vector<double> theta(model.paramCount(), 0.5);
    auto chain = model.chainFor(theta);
    for (auto _ : state) {
        auto paths = markov::enumeratePaths(chain, 0);
        benchmark::DoNotOptimize(paths.paths.size());
    }
}
BENCHMARK(BM_PathEnumerationCrc16);

void
BM_Estimator(benchmark::State &state)
{
    auto kind = tomography::EstimatorKind(state.range(0));
    auto workload = workloads::makeEventDispatch();
    sim::SimConfig config;
    config.cyclesPerTick = 4;
    auto inputs = workload.makeInputs(1);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, 2);
    auto run = simulator.run(workload.entry, 1000);
    auto lowered = sim::lowerModule(*workload.module);
    auto estimator = tomography::makeEstimator(kind, {});

    for (auto _ : state) {
        auto estimate = tomography::estimateModule(
            *workload.module, lowered, config.costs, config.policy, 4,
            2.0 * config.costs.timerRead, run.trace, *estimator);
        benchmark::DoNotOptimize(estimate.thetas.size());
    }
    state.SetLabel(tomography::estimatorName(kind));
}
BENCHMARK(BM_Estimator)
    ->Arg(int(tomography::EstimatorKind::Linear))
    ->Arg(int(tomography::EstimatorKind::Em))
    ->Arg(int(tomography::EstimatorKind::Moment));

/**
 * The EM solve alone on a prebuilt trace: dominated by the E-step over
 * the flattened kernel — the hot loop the contiguous-kernel +
 * responsibility-hoisting optimization targets.
 */
void
BM_EmSolveCrc16(benchmark::State &state)
{
    auto workload = workloads::makeCrc16();
    sim::SimConfig config;
    config.cyclesPerTick = 4;
    auto inputs = workload.makeInputs(1);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, 2);
    auto run = simulator.run(workload.entry, 2000);
    auto lowered = sim::lowerModule(*workload.module);
    auto estimator =
        tomography::makeEstimator(tomography::EstimatorKind::Em, {});

    for (auto _ : state) {
        auto estimate = tomography::estimateModule(
            *workload.module, lowered, config.costs, config.policy, 4,
            2.0 * config.costs.timerRead, run.trace, *estimator);
        benchmark::DoNotOptimize(estimate.thetas.size());
    }
}
BENCHMARK(BM_EmSolveCrc16);

/**
 * The full pipeline at the configured --jobs count: with jobs > 1 the
 * five placement evaluations run concurrently. Results are identical
 * for every jobs value; only the wall time moves.
 */
void
BM_PipelineRun(benchmark::State &state)
{
    auto workload = workloads::makeEventDispatch();
    api::PipelineConfig config;
    config.measureInvocations = 500;
    config.evalInvocations = 1000;
    config.sim.cyclesPerTick = 4;
    config.seed = 3;
    config.jobs = g_jobs;
    for (auto _ : state) {
        api::TomographyPipeline pipeline(workload, config);
        auto result = pipeline.run();
        benchmark::DoNotOptimize(result.outcomes.size());
    }
    state.SetLabel("jobs=" + std::to_string(g_jobs));
}
BENCHMARK(BM_PipelineRun);

void
BM_StreamingObserve(benchmark::State &state)
{
    auto workload = workloads::makeCrc16();
    sim::SimConfig config;
    config.cyclesPerTick = 4;
    auto inputs = workload.makeInputs(1);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, 2);
    auto run = simulator.run(workload.entry, 2000);
    auto durations = run.trace.durations(workload.entry);

    auto lowered = sim::lowerModule(*workload.module);
    std::vector<double> no_callees(workload.module->procedureCount(), 0.0);
    tomography::TimingModel model(
        workload.entryProc(), lowered.procs[workload.entry], config.costs,
        config.policy, 4, no_callees, 2.0 * config.costs.timerRead);

    size_t cursor = 0;
    tomography::StreamingEstimator streaming(model);
    for (auto _ : state) {
        streaming.observe(durations[cursor]);
        cursor = (cursor + 1) % durations.size();
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_StreamingObserve);

} // namespace

/**
 * Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects
 * unknown flags, so --jobs is peeled off first, and a JSON report under
 * results/ is requested by default so every run leaves a record.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> passthrough;
    passthrough.reserve(size_t(argc) + 2);
    bool has_out = false;
    long jobs_arg = 0;
    std::string jobs_value;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs_value = argv[i] + 7;
            continue;
        }
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs_value = argv[++i];
            continue;
        }
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
        passthrough.push_back(argv[i]);
    }
    if (!jobs_value.empty())
        jobs_arg = std::atol(jobs_value.c_str());
    g_jobs = exec::resolveJobs(jobs_arg > 0 ? size_t(jobs_arg) : 0);

    std::string out_flag = "--benchmark_out=results/bench_micro.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        ::mkdir("results", 0755); // EEXIST is fine
        passthrough.push_back(out_flag.data());
        passthrough.push_back(fmt_flag.data());
    }

    int pass_argc = int(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
