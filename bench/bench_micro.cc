/**
 * @file
 * E9 — google-benchmark microbenchmarks of the harness itself: mote
 * simulation throughput, absorbing-chain math, path enumeration, and
 * the estimators. These are not paper results; they document that the
 * reproduction is fast enough to sweep.
 */

#include <benchmark/benchmark.h>

#include "markov/paths.hh"
#include "sim/machine.hh"
#include "tomography/estimator.hh"
#include "tomography/streaming.hh"
#include "workloads/workload.hh"

using namespace ct;

namespace {

void
BM_SimulateCrc16(benchmark::State &state)
{
    auto workload = workloads::makeCrc16();
    sim::SimConfig config;
    config.maxGapCycles = 0;
    auto inputs = workload.makeInputs(1);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, 2);
    for (auto _ : state) {
        auto result = simulator.run(workload.entry, 100);
        benchmark::DoNotOptimize(result.totalCycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_SimulateCrc16);

void
BM_FundamentalMatrix(benchmark::State &state)
{
    const size_t n = size_t(state.range(0));
    markov::AbsorbingChain chain(n);
    for (size_t i = 0; i + 1 < n; ++i) {
        chain.setTransition(i, i + 1, 0.7);
        if (i > 0)
            chain.setTransition(i, i - 1, 0.2);
    }
    for (auto _ : state) {
        auto matrix = chain.fundamentalMatrix();
        benchmark::DoNotOptimize(matrix.at(0, n - 1));
    }
}
BENCHMARK(BM_FundamentalMatrix)->Arg(8)->Arg(16)->Arg(32);

void
BM_PathEnumerationCrc16(benchmark::State &state)
{
    auto workload = workloads::makeCrc16();
    auto lowered = sim::lowerModule(*workload.module);
    std::vector<double> no_callees(workload.module->procedureCount(), 0.0);
    tomography::TimingModel model(
        workload.entryProc(), lowered.procs[workload.entry],
        sim::telosCostModel(), sim::PredictPolicy::NotTaken, 4, no_callees,
        4.0);
    std::vector<double> theta(model.paramCount(), 0.5);
    auto chain = model.chainFor(theta);
    for (auto _ : state) {
        auto paths = markov::enumeratePaths(chain, 0);
        benchmark::DoNotOptimize(paths.paths.size());
    }
}
BENCHMARK(BM_PathEnumerationCrc16);

void
BM_Estimator(benchmark::State &state)
{
    auto kind = tomography::EstimatorKind(state.range(0));
    auto workload = workloads::makeEventDispatch();
    sim::SimConfig config;
    config.cyclesPerTick = 4;
    auto inputs = workload.makeInputs(1);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, 2);
    auto run = simulator.run(workload.entry, 1000);
    auto lowered = sim::lowerModule(*workload.module);
    auto estimator = tomography::makeEstimator(kind, {});

    for (auto _ : state) {
        auto estimate = tomography::estimateModule(
            *workload.module, lowered, config.costs, config.policy, 4,
            2.0 * config.costs.timerRead, run.trace, *estimator);
        benchmark::DoNotOptimize(estimate.thetas.size());
    }
    state.SetLabel(tomography::estimatorName(kind));
}
BENCHMARK(BM_Estimator)
    ->Arg(int(tomography::EstimatorKind::Linear))
    ->Arg(int(tomography::EstimatorKind::Em))
    ->Arg(int(tomography::EstimatorKind::Moment));

void
BM_StreamingObserve(benchmark::State &state)
{
    auto workload = workloads::makeCrc16();
    sim::SimConfig config;
    config.cyclesPerTick = 4;
    auto inputs = workload.makeInputs(1);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, 2);
    auto run = simulator.run(workload.entry, 2000);
    auto durations = run.trace.durations(workload.entry);

    auto lowered = sim::lowerModule(*workload.module);
    std::vector<double> no_callees(workload.module->procedureCount(), 0.0);
    tomography::TimingModel model(
        workload.entryProc(), lowered.procs[workload.entry], config.costs,
        config.policy, 4, no_callees, 2.0 * config.costs.timerRead);

    size_t cursor = 0;
    tomography::StreamingEstimator streaming(model);
    for (auto _ : state) {
        streaming.observe(durations[cursor]);
        cursor = (cursor + 1) % durations.size();
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_StreamingObserve);

} // namespace

BENCHMARK_MAIN();
