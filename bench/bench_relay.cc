/**
 * @file
 * E16 — hierarchical snapshot aggregation: wire cost and correctness
 * of the ct::relay mote -> sink -> region -> root tree across fanout
 * (--fanout-list, default 2..8), depth (--depth-list, default 1..3),
 * and per-link loss (--loss-list, default 0,0.1,0.3). Expected shape:
 * the root digest is byte-identical for EVERY (fanout, depth, loss,
 * jobs) combination — aggregation through any tree loses nothing —
 * and the wire cost stories diverge with campaign length: forwarding
 * the framed record stream up the tree is O(records x depth), while a
 * snapshot is O(estimator state) no matter how long the motes ran, so
 * past a few dozen invocations per mote the snapshot path wins and
 * keeps widening (wire_vs_baseline_pct falls as --records grows).
 *
 * Output splits by determinism, the same discipline as bench_fleet:
 *
 *   - results/relay_tree.csv — deterministic counts (links, records,
 *     slots, estimators) plus root/flat digests and the match verdict;
 *     CI diffs this file across --jobs values, and the bench itself
 *     fatals if any sweep point's root digest strays from the first
 *     (the depth/fanout/loss invariance, checked in-process).
 *   - results/BENCH_relay.{csv,json} — wall-clock numbers (ingest and
 *     aggregation seconds, wire bytes vs the record-forwarding
 *     baseline, retransmissions, adopt/estimate latency); never
 *     diffed, uploaded as the perf artifact.
 *
 * The adopt rows time the "fresh root joins the campaign" path: adopt
 * the shipped snapshot into an empty bank, and derive a
 * placement-ready estimate from it (relay::estimateFromSnapshot) —
 * the zero-replay alternative to re-streaming the WAL.
 */

#include "common.hh"

#include "net/collector.hh"
#include "obs/metrics.hh"
#include "relay/tree.hh"
#include "sim/machine.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;
using namespace ct::bench;

namespace {

std::vector<size_t>
parseSizeList(const std::string &text)
{
    std::vector<size_t> out;
    for (const auto &part : split(text, ','))
        out.push_back(size_t(std::stoull(part)));
    CT_ASSERT(!out.empty(), "empty sweep list");
    return out;
}

std::vector<double>
parseRateList(const std::string &text)
{
    std::vector<double> out;
    for (const auto &part : split(text, ','))
        out.push_back(std::stod(part));
    CT_ASSERT(!out.empty(), "empty sweep list");
    return out;
}

std::string
hexDigest(uint64_t digest)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  (unsigned long long)digest);
    return buf;
}

std::string
rateLabel(double rate)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%g", rate);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "fanout-list", "depth-list", "loss-list",
                  "motes", "records", "templates", "jobs", "seed", "mtu"});
    auto workload =
        workloads::workloadByName(args.get("workload", "event_dispatch"));
    auto fanout_list = parseSizeList(args.get("fanout-list", "2,4,8"));
    auto depth_list = parseSizeList(args.get("depth-list", "1,2,3"));
    auto loss_list = parseRateList(args.get("loss-list", "0,0.1,0.3"));
    size_t motes = size_t(args.getLong("motes", 256));
    size_t records = size_t(args.getLong("records", 64));
    size_t templates = size_t(args.getLong("templates", 8));
    size_t jobs = jobsFromArgs(args);
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    size_t mtu = size_t(args.getLong("mtu", relay::kDefaultRelayMtu));

    TablePrinter det("E16: relay tree aggregation — deterministic view (" +
                     workload.name + ")");
    det.setHeader({"fanout", "depth", "loss", "nodes", "links", "records",
                   "estimators", "root_digest", "flat_digest", "match"});

    TablePrinter perf("E16: relay tree aggregation — perf (" +
                      workload.name + ", jobs=" + std::to_string(jobs) +
                      ")");
    perf.setHeader({"kind", "fanout", "depth", "loss", "ingest_s",
                    "aggregate_s", "wire_bytes", "image_bytes",
                    "baseline_bytes", "wire_vs_baseline_pct", "fragments",
                    "retx", "failed_links", "adopt_us", "estimate_us"});

    uint64_t reference_digest = 0;
    bool have_reference = false;

    for (size_t fanout : fanout_list) {
        for (size_t depth : depth_list) {
            for (double loss : loss_list) {
                relay::RelayTreeConfig config;
                config.tree = relay::TreeTopology::balanced(fanout, depth);
                config.motes = motes;
                config.invocations = records;
                config.templates = templates;
                config.jobs = jobs;
                config.seed = seed;
                config.ship.mtu = mtu;
                config.ship.channel.dropRate = loss;

                auto result = relay::runRelayTree(workload, config);
                det.row(fanout, depth, rateLabel(loss),
                        config.tree.nodes(), result.links.size(),
                        result.records, result.estimators,
                        hexDigest(result.rootDigest),
                        hexDigest(result.flatDigest),
                        result.digestMatch ? "yes" : "NO");

                CT_ASSERT(result.digestMatch,
                          "relay tree root digest diverged from the flat "
                          "single-sink digest");
                CT_ASSERT(result.failedLinks == 0,
                          "relay tree link exhausted its retry budget");
                if (!have_reference) {
                    reference_digest = result.rootDigest;
                    have_reference = true;
                }
                CT_ASSERT(result.rootDigest == reference_digest,
                          "root digest is not invariant across the "
                          "(fanout, depth, loss) sweep");

                // Record-forwarding baseline: every framed record
                // frame crosses every relay level on its way up.
                uint64_t baseline = result.ingestFrameBytes *
                                    uint64_t(std::max<size_t>(depth, 1));
                double pct = baseline
                                 ? 100.0 * double(result.totalWireBytes()) /
                                       double(baseline)
                                 : 0.0;

                // Fresh-root adoption timing off the aggregated root
                // snapshot (outside the campaign's measured regions).
                auto lowered = sim::lowerModule(*workload.module);
                sim::SimConfig sim_config;
                sim_config.cyclesPerTick = config.cyclesPerTick;
                double nested_probe =
                    2.0 * double(sim_config.costs.timerRead);
                net::EstimatorBank fresh(*workload.module, lowered,
                                         sim_config.costs,
                                         sim_config.policy,
                                         config.cyclesPerTick, {},
                                         nested_probe);
                obs::StopwatchUs adopt_watch;
                relay::adoptIntoBank(result.root, fresh);
                int64_t adopt_us = adopt_watch.elapsedUs();
                obs::StopwatchUs estimate_watch;
                auto estimate = relay::estimateFromSnapshot(
                    *workload.module, lowered, sim_config.costs,
                    sim_config.policy, config.cyclesPerTick, nested_probe,
                    {}, result.root);
                int64_t estimate_us = estimate_watch.elapsedUs();
                CT_ASSERT(estimate.profile.size() ==
                              workload.module->procedureCount(),
                          "snapshot estimate missing procedures");

                perf.row("sweep", fanout, depth, rateLabel(loss),
                         result.ingestSeconds, result.aggregateSeconds,
                         result.totalWireBytes(), result.totalImageBytes(),
                         baseline, pct, result.totalFragmentsSent(),
                         result.totalRetransmissions(),
                         result.failedLinks, adopt_us, estimate_us);
            }
        }
    }

    emit(det, "relay_tree");
    emit(perf, "BENCH_relay", /*json=*/true);
    return 0;
}
