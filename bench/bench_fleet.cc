/**
 * @file
 * E15 — fleet-scale sharded ingest: throughput and latency of the
 * ct::fleet sharded collection pipeline across campaign sizes
 * (--motes-list, default 10^3..10^5; 10^6 reachable) and shard counts
 * (--shards-list, default 1..16). Expected shape: per-shard locking
 * scales with worker count while the Global locking mode flattens at
 * one collector's throughput, and the merged snapshot digest is
 * byte-identical for every (shards, jobs) combination.
 *
 * Output splits by determinism, the same discipline as bench_store:
 *
 *   - results/fleet_ingest.csv — deterministic counts (frames,
 *     records, estimators) plus the merged snapshot digest; CI diffs
 *     this file across --jobs values AND across shard counts.
 *   - results/BENCH_fleet.{csv,json} — wall-clock numbers (records/s,
 *     per-shard p50/p99 ingest latency, scaling efficiency, locking
 *     and metrics-overhead comparisons); never diffed, uploaded as
 *     the perf artifact.
 *
 * Also measures the striped obs::Counter hot path directly (stderr):
 * concurrent add() throughput against a single-cell atomic baseline —
 * the contention the striping removes (obs counter writes have been
 * relaxed-memory-order since the metrics layer landed; striping is
 * what de-contends the cache line).
 */

#include "common.hh"

#include <atomic>
#include <filesystem>

#include "exec/thread_pool.hh"
#include "fleet/fleet.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;
using namespace ct::bench;

namespace fs = std::filesystem;

namespace {

std::vector<size_t>
parseList(const std::string &text)
{
    std::vector<size_t> out;
    for (const auto &part : split(text, ','))
        out.push_back(size_t(std::stoull(part)));
    CT_ASSERT(!out.empty(), "empty sweep list");
    return out;
}

std::string
scratchDir(const std::string &tag)
{
    auto dir = fs::temp_directory_path() / ("ct_bench_fleet_" + tag);
    fs::remove_all(dir);
    return dir.string();
}

/** Hex digest the way fleet_collect prints it. */
std::string
hexDigest(uint64_t digest)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  (unsigned long long)digest);
    return buf;
}

struct PerfRow
{
    std::string kind;
    size_t motes = 0;
    size_t shards = 0;
    std::string shard = "-";
    std::string locking = "shard";
    std::string metrics = "off";
    double ingestSeconds = 0.0;
    double recordsPerSecond = 0.0;
    double speedup = 0.0;
    double efficiency = 0.0;
    int64_t p50Ns = 0;
    int64_t p99Ns = 0;
};

/** Worst-shard latency quantiles of one campaign. */
void
worstLatency(const fleet::ShardedFleetResult &result, int64_t &p50,
             int64_t &p99)
{
    p50 = 0;
    p99 = 0;
    for (const auto &shard : result.shards) {
        p50 = std::max(p50, shard.p50IngestNs);
        p99 = std::max(p99, shard.p99IngestNs);
    }
}

/** Concurrent add() ns/op of a counter-shaped thing over the pool. */
template <typename Bump>
double
hammer(size_t threads, size_t iters, Bump bump)
{
    exec::ThreadPool pool(threads);
    obs::StopwatchUs watch;
    pool.parallelFor(threads, [&](size_t) {
        for (size_t i = 0; i < iters; ++i)
            bump();
    });
    return double(watch.elapsedUs()) * 1e3 /
           double(threads ? threads * iters : iters);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "motes-list", "shards-list", "records",
                  "templates", "jobs", "seed", "keep-dirs"});
    auto workload =
        workloads::workloadByName(args.get("workload", "event_dispatch"));
    auto motes_list = parseList(args.get("motes-list", "1000,10000,100000"));
    auto shards_list = parseList(args.get("shards-list", "1,2,4,8,16"));
    size_t records = size_t(args.getLong("records", 8));
    size_t templates = size_t(args.getLong("templates", 8));
    size_t jobs = jobsFromArgs(args);
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    bool keep_dirs = args.getBool("keep-dirs", false);

    auto campaign = [&](size_t motes, size_t shards,
                        fleet::Locking locking, const std::string &store) {
        fleet::ShardedFleetConfig config;
        config.motes = motes;
        config.invocations = records;
        config.templates = templates;
        config.jobs = jobs;
        config.seed = seed;
        config.collector.shards = shards;
        config.collector.locking = locking;
        config.collector.storeDir = store;
        // Group-commit batch large enough that the WAL's fsyncs don't
        // drown the counter path this configuration measures.
        config.collector.store.fsyncEveryRecords = 4096;
        config.checkpointAtEnd = !store.empty();
        return fleet::runShardedFleet(workload, config);
    };

    TablePrinter det("E15: sharded fleet ingest — deterministic view (" +
                     workload.name + ")");
    det.setHeader({"motes", "shards", "frames", "records", "estimators",
                   "digest"});

    std::vector<PerfRow> perf;
    std::vector<fleet::ShardedFleetResult> largest; // per shards value

    for (size_t motes : motes_list) {
        double base_seconds = 0.0;
        for (size_t shards : shards_list) {
            auto result = campaign(motes, shards, fleet::Locking::PerShard,
                                   "");
            det.row(motes, shards, result.totalFrames(),
                    result.totalRecords(), result.estimators,
                    hexDigest(result.mergedDigest));

            PerfRow row;
            row.kind = "sweep";
            row.motes = motes;
            row.shards = shards;
            row.ingestSeconds = result.ingestSeconds;
            row.recordsPerSecond = result.recordsPerSecond();
            if (shards == shards_list.front() &&
                shards_list.front() == 1)
                base_seconds = result.ingestSeconds;
            if (base_seconds > 0.0 && result.ingestSeconds > 0.0) {
                row.speedup = base_seconds / result.ingestSeconds;
                row.efficiency = row.speedup / double(shards);
            }
            worstLatency(result, row.p50Ns, row.p99Ns);
            perf.push_back(row);

            if (motes == motes_list.back())
                largest.push_back(std::move(result));
        }
    }

    // --- Locking comparison: the contended configuration. -----------
    {
        size_t motes = motes_list.back();
        size_t shards = shards_list.back();
        auto result =
            campaign(motes, shards, fleet::Locking::Global, "");
        PerfRow row;
        row.kind = "locking";
        row.motes = motes;
        row.shards = shards;
        row.locking = "global";
        row.ingestSeconds = result.ingestSeconds;
        row.recordsPerSecond = result.recordsPerSecond();
        worstLatency(result, row.p50Ns, row.p99Ns);
        perf.push_back(row);
    }

    // --- Metrics overhead: durable ingest, counters off vs on. ------
    for (bool metrics_on : {false, true}) {
        size_t motes = motes_list.back();
        size_t shards = shards_list.back();
        auto dir = scratchDir(metrics_on ? "metrics_on" : "metrics_off");
        obs::setMetricsEnabled(metrics_on);
        auto result =
            campaign(motes, shards, fleet::Locking::PerShard, dir);
        obs::setMetricsEnabled(false);
        obs::metrics().clear();
        PerfRow row;
        row.kind = "metrics";
        row.motes = motes;
        row.shards = shards;
        row.metrics = metrics_on ? "on" : "off";
        row.ingestSeconds = result.ingestSeconds;
        row.recordsPerSecond = result.recordsPerSecond();
        worstLatency(result, row.p50Ns, row.p99Ns);
        perf.push_back(row);
        if (!keep_dirs)
            fs::remove_all(dir);
    }

    // --- Per-shard latency detail of the largest campaign. ----------
    if (!largest.empty()) {
        const auto &result = largest.back();
        for (const auto &shard : result.shards) {
            PerfRow row;
            row.kind = "shard";
            row.motes = motes_list.back();
            row.shards = result.shards.size();
            row.shard = std::to_string(shard.shard);
            row.ingestSeconds = double(shard.ingestUs) / 1e6;
            row.recordsPerSecond =
                row.ingestSeconds > 0.0
                    ? double(shard.records) / row.ingestSeconds
                    : 0.0;
            row.p50Ns = shard.p50IngestNs;
            row.p99Ns = shard.p99IngestNs;
            perf.push_back(row);
        }
    }

    emit(det, "fleet_ingest");

    TablePrinter table("E15: sharded fleet ingest — perf (" +
                       workload.name + ", jobs=" + std::to_string(jobs) +
                       ")");
    table.setHeader({"kind", "motes", "shards", "shard", "locking",
                     "metrics", "ingest_s", "records_per_s", "speedup",
                     "efficiency", "p50_ns", "p99_ns"});
    for (const auto &row : perf)
        table.row(row.kind, row.motes, row.shards, row.shard, row.locking,
                  row.metrics, row.ingestSeconds, row.recordsPerSecond,
                  row.speedup, row.efficiency, row.p50Ns, row.p99Ns);
    emit(table, "BENCH_fleet", /*json=*/true);

    // --- The striped-counter hot path itself. -----------------------
    {
        const size_t iters = 1'000'000;
        obs::Counter striped;
        double striped_ns =
            hammer(jobs, iters, [&] { striped.add(1); });
        CT_ASSERT(striped.value() == uint64_t(jobs) * iters,
                  "striped counter lost adds");
        struct
        {
            std::atomic<uint64_t> value{0};
        } single;
        double single_ns = hammer(jobs, iters, [&] {
            single.value.fetch_add(1, std::memory_order_relaxed);
        });
        inform("counter add (", jobs, " threads): striped ", striped_ns,
               " ns/op, single-cell ", single_ns, " ns/op");
    }
    return 0;
}
