/**
 * @file
 * E13 — durable store cost: append throughput of the ct::store WAL
 * across fsync batch sizes, and cold-recovery latency as a function of
 * WAL length with and without an estimator checkpoint. Expected shape:
 * group commit amortizes fsync almost linearly until the batch dwarfs
 * the segment, and a checkpoint flattens recovery from O(records) to
 * O(tail) — the numbers that justify the defaults in StoreConfig.
 *
 * The diffable table carries only deterministic columns (records,
 * bytes, segments, fsyncs, recovered counts); wall-clock throughput
 * and latency go to stderr, never into the CSV.
 */

#include "common.hh"

#include <filesystem>

#include "net/collector.hh"
#include "obs/metrics.hh"
#include "sim/lower.hh"
#include "sim/machine.hh"
#include "store/store.hh"
#include "util/logging.hh"

using namespace ct;
using namespace ct::bench;

namespace fs = std::filesystem;

namespace {

std::string
scratchDir(const std::string &tag)
{
    auto dir = fs::temp_directory_path() / ("ct_bench_store_" + tag);
    fs::remove_all(dir);
    return dir.string();
}

net::EstimatorBank
makeBank(const workloads::Workload &workload,
         const sim::LoweredModule &lowered, const sim::SimConfig &config)
{
    return net::EstimatorBank(*workload.module, lowered, config.costs,
                              config.policy, config.cyclesPerTick, {},
                              2.0 * config.costs.timerRead);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "samples", "seed", "segbytes", "keep-dirs"});
    auto workload =
        workloads::workloadByName(args.get("workload", "crc16"));
    size_t samples = size_t(args.getLong("samples", 20'000));
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    size_t segbytes = size_t(args.getLong("segbytes", 256 * 1024));
    bool keep_dirs = args.getBool("keep-dirs", false);

    // One measured trace reused by every configuration below.
    sim::SimConfig sim_config;
    auto lowered = sim::lowerModule(*workload.module);
    auto inputs = workload.makeInputs(seed);
    sim::Simulator simulator(*workload.module, lowered, sim_config, *inputs,
                             seed ^ 0x570e);
    auto trace = simulator.run(workload.entry, samples).trace;
    const auto &records = trace.records();

    TablePrinter table("E13: durable store append + cold recovery (" +
                       workload.name + ", " +
                       std::to_string(records.size()) + " records)");
    table.setHeader({"phase", "fsync batch", "checkpoint", "records",
                     "bytes", "segments", "fsyncs", "recovered",
                     "replayed", "slots"});

    // --- Append sweep: group-commit batch size vs fsync count. ------
    for (size_t batch : {size_t(1), size_t(8), size_t(64), size_t(256),
                         size_t(1024)}) {
        auto dir = scratchDir("append_" + std::to_string(batch));
        store::StoreConfig config;
        config.segmentBytes = segbytes;
        config.fsyncEveryRecords = batch;

        obs::StopwatchUs watch;
        store::StoreStats stats;
        size_t segments = 0;
        {
            store::Store store(dir, config);
            for (const auto &r : records)
                store.append(1, r);
            store.flush();
            stats = store.stats();
            segments = store.segments().size();
        }
        double elapsed_s = double(watch.elapsedUs()) / 1e6;
        table.row("append", batch, "-", stats.recordsAppended,
                  stats.bytesAppended, segments, stats.fsyncs, "-", "-",
                  "-");
        if (elapsed_s > 0.0) {
            inform("append batch ", batch, ": ",
                   uint64_t(double(records.size()) / elapsed_s),
                   " records/s, ",
                   double(stats.bytesAppended) / 1e6 / elapsed_s, " MB/s");
        }
        if (!keep_dirs)
            fs::remove_all(dir);
    }

    // --- Cold recovery: WAL length x {no checkpoint, checkpoint}. ---
    for (size_t length : {records.size() / 4, records.size() / 2,
                          records.size()}) {
        for (bool checkpoint : {false, true}) {
            auto dir = scratchDir("recover_" + std::to_string(length) +
                                  (checkpoint ? "_ckpt" : "_wal"));
            store::StoreConfig config;
            config.segmentBytes = segbytes;
            config.fsyncEveryRecords = 256;
            {
                store::Store store(dir, config);
                auto writer = makeBank(workload, lowered, sim_config);
                for (size_t i = 0; i < length; ++i) {
                    store.append(1, records[i]);
                    writer.observe(1, records[i]);
                    // Checkpoint at 90%: recovery replays only the tail.
                    if (checkpoint && i + 1 == length - length / 10)
                        store.writeCheckpoint(writer.snapshot());
                }
            }

            obs::StopwatchUs watch;
            store::Store reopened(dir, config);
            auto resumed = makeBank(workload, lowered, sim_config);
            net::resumeBank(reopened, resumed);
            double elapsed_s = double(watch.elapsedUs()) / 1e6;

            size_t replayed = reopened.recoveredTail().size();
            size_t slots = reopened.recoveredCheckpoint()
                               ? reopened.recoveredCheckpoint()->slots.size()
                               : 0;
            table.row("recover", "-", checkpoint ? "yes" : "no", length,
                      "-", reopened.segments().size(), "-",
                      reopened.nextOrdinal(), replayed, slots);
            inform("recover ", length, " records ",
                   checkpoint ? "with" : "without", " checkpoint: ",
                   watch.elapsedUs(), " us (", replayed,
                   " entries replayed)");
            (void)elapsed_s;
            if (!keep_dirs)
                fs::remove_all(dir);
        }
    }

    emit(table, "store");
    return 0;
}
