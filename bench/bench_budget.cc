/**
 * @file
 * E18 — budgeted placement selection: for every suite workload, sweep
 * the flash budget from zero to "everything the unconstrained
 * assignment needs" and solve each point with both ct::budget solvers.
 * Expected shape: the exact DP accepts every instance at this scale
 * (flash-only lattice), greedy is feasible and within the optimum at
 * every point with a gap of 0 in almost all cells (the per-group
 * frontiers are small and near-concave), gains grow monotonically with
 * the budget, and the 100% column reproduces the unconstrained gain
 * bit for bit.
 *
 * The table is deterministic for any --jobs value: campaigns fan out
 * over the pool (seeds derive from the workload alone) and the sweep
 * itself is serial arithmetic.
 */

#include "common.hh"

#include <cmath>
#include <iostream>

#include "budget/budget.hh"
#include "causal/causal.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"invocations", "seed", "jobs"});
    size_t invocations = size_t(args.getLong("invocations", 2000));
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    size_t jobs = jobsFromArgs(args);

    const double fractions[] = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};

    TablePrinter table("E18: budgeted placement, flash tightness x solver");
    table.setHeader({"workload", "budget %", "flash budget B",
                     "exact gain", "greedy gain", "gap %", "upgrades",
                     "deferred", "flash used B", "binding"});

    auto suite = workloads::allWorkloads();
    auto campaigns = runCampaigns(suite, invocations, /*cycles_per_tick=*/1,
                                  tomography::EstimatorKind::Em, seed, {},
                                  jobs);

    size_t exact_rejections = 0;
    double max_gap_pct = 0.0;
    for (size_t w = 0; w < suite.size(); ++w) {
        const auto &workload = suite[w];
        const auto &estimate = campaigns[w].estimate;
        auto lowered = sim::lowerModule(*workload.module);
        sim::SimConfig sim_config;
        auto theta = causal::normalizeTheta(*workload.module,
                                            estimate.thetas);

        // One instance serves the whole sweep: candidate gains and
        // costs do not depend on the budget, only feasibility does.
        auto instance = budget::buildInstance(
            *workload.module, lowered, sim_config.costs, sim_config.policy,
            workload.entry, theta, estimate.profile,
            budget::BudgetSpec::unlimited());
        auto unconstrained = budget::greedySolve(instance);
        const uint64_t full_flash = unconstrained.usage.flashBytes;

        // Sweep the budget at byte granularity (pageBytes = 1 makes
        // flashPages a byte count): suite code images are smaller than
        // one real flash page, so page-granular budgets would only
        // ever be "none" or "everything".
        instance.budget.pageBytes = 1;
        for (double fraction : fractions) {
            instance.budget.flashPages =
                uint64_t(fraction * double(full_flash));
            auto plan = budget::solve(instance);
            CT_ASSERT(budget::feasible(instance, plan.assignment.choice),
                      "E18: chosen assignment infeasible");
            if (plan.exactRan) {
                CT_ASSERT(plan.greedyGain <= plan.exactGain + 1e-9,
                          "E18: greedy beat the exact optimum");
                max_gap_pct = std::max(max_gap_pct, plan.optimalityGapPct);
            } else {
                ++exact_rejections;
            }
            if (fraction == 1.0) {
                CT_ASSERT(std::abs(plan.assignment.gain -
                                   unconstrained.gain) < 1e-9,
                          "E18: full budget must reproduce the "
                          "unconstrained gain");
            }
            std::string binding;
            if (plan.flashBinding)
                binding += "F";
            if (plan.ramBinding)
                binding += "R";
            if (plan.energyBinding)
                binding += "E";
            table.row(workload.name, 100.0 * fraction,
                      instance.budget.flashBytes(),
                      plan.exactRan ? formatDouble(plan.exactGain, 4)
                                    : std::string("-"),
                      plan.greedyGain, plan.optimalityGapPct,
                      plan.upgrades, plan.deferred,
                      plan.assignment.usage.flashBytes,
                      binding.empty() ? "-" : binding);
        }
    }

    emit(table, "BENCH_budget");
    std::cerr << "exact rejections: " << exact_rejections
              << "; worst greedy gap: " << formatDouble(max_gap_pct, 4)
              << "%\n";
    return 0;
}
