/**
 * @file
 * E6 / Fig. 5 — cycle improvement: percentage of total execution cycles
 * saved by tomography-guided placement over the natural layout, next to
 * the perfect-profile oracle's saving. Expected shape: both bars nearly
 * coincide (the estimate is good enough to optimize with), with single-
 * digit-percent savings typical of placement-only optimization.
 */

#include "common.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"samples", "eval", "ticks", "seed", "estimator"});

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.evalInvocations = size_t(args.getLong("eval", 5000));
    config.sim.cyclesPerTick = uint64_t(args.getLong("ticks", 4));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.estimator = parseEstimator(args.get("estimator", "em"));

    TablePrinter table("Fig 5: % total-cycle reduction vs natural layout");
    table.setHeader({"workload", "tomography %", "perfect %", "energy %",
                     "taken-branch rate natural", "taken-branch rate tomo",
                     "branch MAE"});

    double mean_tomo = 0.0;
    double mean_perfect = 0.0;
    double mean_energy = 0.0;
    auto suite = workloads::allWorkloads();
    for (const auto &workload : suite) {
        api::TomographyPipeline pipeline(workload, config);
        auto result = pipeline.run();
        mean_tomo += result.cyclesImprovementPct();
        mean_perfect += result.perfectImprovementPct();
        mean_energy += result.energyImprovementPct();
        table.row(workload.name, result.cyclesImprovementPct(),
                  result.perfectImprovementPct(),
                  result.energyImprovementPct(),
                  result.outcome("natural").takenRate,
                  result.outcome("tomography").takenRate,
                  result.branchMae);
    }
    table.row("suite mean", mean_tomo / double(suite.size()),
              mean_perfect / double(suite.size()),
              mean_energy / double(suite.size()), "", "", "");
    emit(table, "fig5_speedup");
    return 0;
}
