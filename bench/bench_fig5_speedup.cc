/**
 * @file
 * E6 / Fig. 5 — cycle improvement: percentage of total execution cycles
 * saved by tomography-guided placement over the natural layout, next to
 * the perfect-profile oracle's saving. Expected shape: both bars nearly
 * coincide (the estimate is good enough to optimize with), with single-
 * digit-percent savings typical of placement-only optimization.
 */

#include "common.hh"

#include "exec/thread_pool.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"samples", "eval", "ticks", "seed", "estimator", "jobs"});

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.evalInvocations = size_t(args.getLong("eval", 5000));
    config.sim.cyclesPerTick = uint64_t(args.getLong("ticks", 4));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.estimator = parseEstimator(args.get("estimator", "em"));
    // One pipeline per worker; keep each pipeline serial inside.
    config.jobs = 1;

    TablePrinter table("Fig 5: % total-cycle reduction vs natural layout");
    table.setHeader({"workload", "tomography %", "perfect %", "energy %",
                     "taken-branch rate natural", "taken-branch rate tomo",
                     "branch MAE"});

    auto suite = workloads::allWorkloads();
    exec::ThreadPool pool(jobsFromArgs(args));
    auto results = exec::parallelMap(pool, suite.size(), [&](size_t i) {
        api::TomographyPipeline pipeline(suite[i], config);
        return pipeline.run();
    });

    double mean_tomo = 0.0;
    double mean_perfect = 0.0;
    double mean_energy = 0.0;
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &result = results[i];
        mean_tomo += result.cyclesImprovementPct();
        mean_perfect += result.perfectImprovementPct();
        mean_energy += result.energyImprovementPct();
        table.row(suite[i].name, result.cyclesImprovementPct(),
                  result.perfectImprovementPct(),
                  result.energyImprovementPct(),
                  result.outcome("natural").takenRate,
                  result.outcome("tomography").takenRate,
                  result.branchMae);
    }
    table.row("suite mean", mean_tomo / double(suite.size()),
              mean_perfect / double(suite.size()),
              mean_energy / double(suite.size()), "", "", "");
    emit(table, "fig5_speedup");
    return 0;
}
