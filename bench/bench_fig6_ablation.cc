/**
 * @file
 * E8 / Fig. 6 — design ablations:
 *   (a) estimator algorithm (accuracy vs estimation wall time),
 *   (b) path-enumeration visit bound for the loopy workloads,
 *   (c) EM re-enumeration phase on/off,
 *   (d) prediction-policy / cost-model sensitivity of the end-to-end
 *       improvement.
 */

#include "common.hh"

#include <chrono>

#include "exec/thread_pool.hh"
#include "layout/evaluator.hh"
#include "tomography/streaming.hh"

using namespace ct;
using namespace ct::bench;

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    auto delta = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(delta).count();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples", "ticks", "seed", "jobs"});
    size_t samples = size_t(args.getLong("samples", 2000));
    uint64_t ticks = uint64_t(args.getLong("ticks", 4));
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    size_t jobs = jobsFromArgs(args);

    auto suite = workloads::allWorkloads();
    exec::ThreadPool pool(jobs);

    // (a) Estimator algorithm: accuracy and cost.
    {
        TablePrinter table("Fig 6a: estimator ablation (suite means)");
        table.setHeader(
            {"estimator", "MAE", "RMSE", "max err", "est. time ms"});
        for (auto kind :
             {tomography::EstimatorKind::Linear, tomography::EstimatorKind::Em,
              tomography::EstimatorKind::Moment}) {
            struct Cell
            {
                double mae = 0.0, rmse = 0.0, worst = 0.0, ms = 0.0;
            };
            auto cells = exec::parallelMap(pool, suite.size(), [&](size_t w) {
                const auto &workload = suite[w];
                sim::SimConfig config;
                config.cyclesPerTick = ticks;
                auto inputs = workload.makeInputs(seed);
                sim::Simulator simulator(
                    *workload.module, sim::lowerModule(*workload.module),
                    config, *inputs, seed ^ 0xbe9c);
                auto run = simulator.run(workload.entry, samples);

                auto start = std::chrono::steady_clock::now();
                auto estimate =
                    estimateFromTrace(workload, run.trace, ticks, kind);
                Cell out;
                out.ms = millisSince(start);

                auto accuracy = scoreAccuracy(workload, run, estimate);
                out.mae = accuracy.mae;
                out.rmse = accuracy.rmse;
                out.worst = accuracy.maxError;
                return out;
            });
            double mae = 0.0, rmse = 0.0, worst = 0.0, ms = 0.0;
            for (const auto &c : cells) {
                mae += c.mae;
                rmse += c.rmse;
                worst = std::max(worst, c.worst);
                ms += c.ms;
            }
            double n = double(suite.size());
            table.row(tomography::estimatorName(kind), mae / n, rmse / n,
                      worst, ms / n);
        }
        emit(table, "fig6a_estimators");
    }

    // (b) Path-bound sensitivity on the loopy workloads.
    {
        TablePrinter table("Fig 6b: EM path bound (maxVisitsPerState)");
        table.setHeader({"bound", "crc16 MAE", "crc16 paths",
                         "sense_and_send MAE", "covered mass (crc16)"});
        auto crc = workloads::workloadByName("crc16");
        auto sns = workloads::workloadByName("sense_and_send");
        auto loopy = runCampaigns({crc, sns}, samples, ticks,
                                  tomography::EstimatorKind::Em, seed, {},
                                  jobs);
        const auto &crc_run = loopy[0];
        const auto &sns_run = loopy[1];

        for (uint32_t bound : {3u, 6u, 9u, 12u, 16u}) {
            tomography::EstimatorOptions options;
            options.pathEnum.maxVisitsPerState = bound;
            auto crc_est = estimateFromTrace(
                crc, crc_run.run.trace, ticks, tomography::EstimatorKind::Em,
                options);
            auto sns_est = estimateFromTrace(
                sns, sns_run.run.trace, ticks, tomography::EstimatorKind::Em,
                options);
            const auto &diag = crc_est.results[crc.entry];
            table.row(size_t(bound),
                      scoreAccuracy(crc, crc_run.run, crc_est).mae,
                      diag.pathCount,
                      scoreAccuracy(sns, sns_run.run, sns_est).mae,
                      diag.coveredPathMass);
        }
        emit(table, "fig6b_pathbound");
    }

    // (c) EM re-enumeration phase.
    {
        TablePrinter table("Fig 6c: EM re-enumeration phase (suite means)");
        table.setHeader({"reenumerate", "MAE", "max err"});
        for (bool reenum : {false, true}) {
            tomography::EstimatorOptions options;
            options.reenumerate = reenum;
            auto campaigns = runCampaigns(suite, samples, ticks,
                                          tomography::EstimatorKind::Em,
                                          seed, options, jobs);
            double mae = 0.0, worst = 0.0;
            for (const auto &campaign : campaigns) {
                mae += campaign.accuracy.mae;
                worst = std::max(worst, campaign.accuracy.maxError);
            }
            table.row(reenum ? "on" : "off", mae / double(suite.size()),
                      worst);
        }
        emit(table, "fig6c_reenumeration");
    }

    // (d) Policy / cost-model sensitivity of the end-to-end win.
    {
        TablePrinter table(
            "Fig 6d: end-to-end improvement by core configuration");
        table.setHeader({"config", "mean tomography %", "mean perfect %"});
        struct Variant
        {
            const char *name;
            sim::PredictPolicy policy;
            sim::CostModel costs;
        };
        const Variant variants[] = {
            {"telos/not-taken", sim::PredictPolicy::NotTaken,
             sim::telosCostModel()},
            {"telos/btfn", sim::PredictPolicy::BTFN, sim::telosCostModel()},
            {"micaz/not-taken", sim::PredictPolicy::NotTaken,
             sim::micazCostModel()},
        };
        for (const auto &variant : variants) {
            struct Cell
            {
                double tomo = 0.0, perfect = 0.0;
            };
            auto cells = exec::parallelMap(pool, suite.size(), [&](size_t w) {
                api::PipelineConfig config;
                config.measureInvocations = samples;
                config.evalInvocations = samples * 2;
                config.sim.cyclesPerTick = ticks;
                config.sim.policy = variant.policy;
                config.sim.costs = variant.costs;
                config.seed = seed;
                config.jobs = 1; // one pipeline per worker
                api::TomographyPipeline pipeline(suite[w], config);
                auto result = pipeline.run();
                return Cell{result.cyclesImprovementPct(),
                            result.perfectImprovementPct()};
            });
            double tomo = 0.0, perfect = 0.0;
            for (const auto &c : cells) {
                tomo += c.tomo;
                perfect += c.perfect;
            }
            table.row(variant.name, tomo / double(suite.size()),
                      perfect / double(suite.size()));
        }
        emit(table, "fig6d_coreconfig");
    }

    // (e) Chain heuristic vs exhaustive optimum: on every procedure
    // small enough to brute-force, compare the expected transfer cycles
    // of the Pettis-Hansen order against the true optimum.
    {
        TablePrinter table(
            "Fig 6e: greedy chains vs exhaustive-optimal placement");
        table.setHeader({"workload/proc", "natural cyc", "greedy cyc",
                         "optimal cyc", "greedy gap %"});
        sim::CostModel costs = sim::telosCostModel();
        auto policy = sim::PredictPolicy::NotTaken;

        struct Row
        {
            std::string name;
            double natural, greedy, best, gap;
        };
        auto per_workload =
            exec::parallelMap(pool, suite.size(), [&](size_t w) {
                const auto &workload = suite[w];
                sim::SimConfig config;
                config.cyclesPerTick = ticks;
                auto inputs = workload.makeInputs(seed);
                sim::Simulator simulator(
                    *workload.module, sim::lowerModule(*workload.module),
                    config, *inputs, seed ^ 0xbe9c);
                auto run = simulator.run(workload.entry, samples);

                std::vector<Row> rows;
                for (const auto &proc : workload.module->procedures()) {
                    if (proc.blockCount() > 9 ||
                        run.invocations[proc.id()] == 0) {
                        continue;
                    }
                    const auto &profile = run.profile[proc.id()];
                    Rng rng(seed);
                    auto greedy = layout::computeOrder(
                        proc, profile, layout::LayoutKind::ProfileGuided,
                        rng);
                    auto best =
                        layout::optimalOrder(proc, profile, costs, policy);

                    double c_nat = layout::evaluatePlacement(
                        proc, sim::naturalOrder(proc), profile, costs,
                        policy).transferCycles;
                    double c_greedy = layout::evaluatePlacement(
                        proc, greedy, profile, costs, policy).transferCycles;
                    double c_best = layout::evaluatePlacement(
                        proc, best, profile, costs, policy).transferCycles;
                    double gap = c_best > 0.0
                                     ? 100.0 * (c_greedy - c_best) / c_best
                                     : 0.0;
                    rows.push_back({workload.name + "/" + proc.name(),
                                    c_nat, c_greedy, c_best, gap});
                }
                return rows;
            });
        for (const auto &rows : per_workload)
            for (const auto &r : rows)
                table.row(r.name, r.natural, r.greedy, r.best, r.gap);
        emit(table, "fig6e_optimality");
    }

    // (f) Streaming (online EM) vs batch EM: error of the sink-side
    // O(1)-memory estimator as the report stream grows.
    {
        TablePrinter table(
            "Fig 6f: streaming vs batch EM (suite mean MAE)");
        table.setHeader({"reports seen", "streaming", "batch"});

        std::vector<size_t> points = {50, 200, 1000, size_t(samples)};
        auto full = runCampaigns(suite, samples, ticks,
                                 tomography::EstimatorKind::Em, seed, {},
                                 jobs);

        for (size_t n : points) {
            struct Cell
            {
                double stream = 0.0, batch = 0.0;
            };
            auto cells = exec::parallelMap(pool, suite.size(), [&](size_t w) {
                const auto &workload = suite[w];
                auto durations =
                    full[w].run.trace.durations(workload.entry);
                if (durations.size() > n)
                    durations.resize(n);

                sim::SimConfig config;
                auto lowered = sim::lowerModule(*workload.module);
                auto means = tomography::meanCyclesBottomUp(
                    *workload.module, lowered, config.costs, config.policy,
                    ticks, full[w].run.profile,
                    2.0 * config.costs.timerRead);
                tomography::TimingModel model(
                    workload.entryProc(), lowered.procs[workload.entry],
                    config.costs, config.policy, ticks, means,
                    2.0 * config.costs.timerRead);
                auto truth =
                    full[w].run.profile[workload.entry].branchProbabilities(
                        workload.entryProc());

                Cell out;
                tomography::StreamingEstimator streaming(model);
                streaming.observeAll(durations);
                if (!truth.empty()) {
                    out.stream =
                        meanAbsoluteError(streaming.theta(), truth);
                    auto batch = tomography::makeEstimator(
                                     tomography::EstimatorKind::Em, {})
                                     ->estimate(model, durations);
                    out.batch = meanAbsoluteError(batch.theta, truth);
                }
                return out;
            });
            double stream_mae = 0.0;
            double batch_mae = 0.0;
            for (const auto &c : cells) {
                stream_mae += c.stream;
                batch_mae += c.batch;
            }
            table.row(n, stream_mae / double(suite.size()),
                      batch_mae / double(suite.size()));
        }
        emit(table, "fig6f_streaming");
    }
    return 0;
}
