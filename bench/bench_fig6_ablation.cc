/**
 * @file
 * E8 / Fig. 6 — design ablations:
 *   (a) estimator algorithm (accuracy vs estimation wall time),
 *   (b) path-enumeration visit bound for the loopy workloads,
 *   (c) EM re-enumeration phase on/off,
 *   (d) prediction-policy / cost-model sensitivity of the end-to-end
 *       improvement.
 */

#include "common.hh"

#include <chrono>

#include "layout/evaluator.hh"
#include "tomography/streaming.hh"

using namespace ct;
using namespace ct::bench;

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    auto delta = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(delta).count();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples", "ticks", "seed"});
    size_t samples = size_t(args.getLong("samples", 2000));
    uint64_t ticks = uint64_t(args.getLong("ticks", 4));
    uint64_t seed = uint64_t(args.getLong("seed", 1));

    auto suite = workloads::allWorkloads();

    // (a) Estimator algorithm: accuracy and cost.
    {
        TablePrinter table("Fig 6a: estimator ablation (suite means)");
        table.setHeader(
            {"estimator", "MAE", "RMSE", "max err", "est. time ms"});
        for (auto kind :
             {tomography::EstimatorKind::Linear, tomography::EstimatorKind::Em,
              tomography::EstimatorKind::Moment}) {
            double mae = 0.0, rmse = 0.0, worst = 0.0, ms = 0.0;
            for (const auto &workload : suite) {
                sim::SimConfig config;
                config.cyclesPerTick = ticks;
                auto inputs = workload.makeInputs(seed);
                sim::Simulator simulator(
                    *workload.module, sim::lowerModule(*workload.module),
                    config, *inputs, seed ^ 0xbe9c);
                auto run = simulator.run(workload.entry, samples);

                auto start = std::chrono::steady_clock::now();
                auto estimate =
                    estimateFromTrace(workload, run.trace, ticks, kind);
                ms += millisSince(start);

                auto accuracy = scoreAccuracy(workload, run, estimate);
                mae += accuracy.mae;
                rmse += accuracy.rmse;
                worst = std::max(worst, accuracy.maxError);
            }
            double n = double(suite.size());
            table.row(tomography::estimatorName(kind), mae / n, rmse / n,
                      worst, ms / n);
        }
        emit(table, "fig6a_estimators");
    }

    // (b) Path-bound sensitivity on the loopy workloads.
    {
        TablePrinter table("Fig 6b: EM path bound (maxVisitsPerState)");
        table.setHeader({"bound", "crc16 MAE", "crc16 paths",
                         "sense_and_send MAE", "covered mass (crc16)"});
        auto crc = workloads::workloadByName("crc16");
        auto sns = workloads::workloadByName("sense_and_send");
        auto crc_run = runCampaign(crc, samples, ticks,
                                   tomography::EstimatorKind::Em, seed);
        auto sns_run = runCampaign(sns, samples, ticks,
                                   tomography::EstimatorKind::Em, seed);

        for (uint32_t bound : {3u, 6u, 9u, 12u, 16u}) {
            tomography::EstimatorOptions options;
            options.pathEnum.maxVisitsPerState = bound;
            auto crc_est = estimateFromTrace(
                crc, crc_run.run.trace, ticks, tomography::EstimatorKind::Em,
                options);
            auto sns_est = estimateFromTrace(
                sns, sns_run.run.trace, ticks, tomography::EstimatorKind::Em,
                options);
            const auto &diag = crc_est.results[crc.entry];
            table.row(size_t(bound),
                      scoreAccuracy(crc, crc_run.run, crc_est).mae,
                      diag.pathCount,
                      scoreAccuracy(sns, sns_run.run, sns_est).mae,
                      diag.coveredPathMass);
        }
        emit(table, "fig6b_pathbound");
    }

    // (c) EM re-enumeration phase.
    {
        TablePrinter table("Fig 6c: EM re-enumeration phase (suite means)");
        table.setHeader({"reenumerate", "MAE", "max err"});
        for (bool reenum : {false, true}) {
            tomography::EstimatorOptions options;
            options.reenumerate = reenum;
            double mae = 0.0, worst = 0.0;
            for (const auto &workload : suite) {
                auto campaign =
                    runCampaign(workload, samples, ticks,
                                tomography::EstimatorKind::Em, seed, options);
                mae += campaign.accuracy.mae;
                worst = std::max(worst, campaign.accuracy.maxError);
            }
            table.row(reenum ? "on" : "off", mae / double(suite.size()),
                      worst);
        }
        emit(table, "fig6c_reenumeration");
    }

    // (d) Policy / cost-model sensitivity of the end-to-end win.
    {
        TablePrinter table(
            "Fig 6d: end-to-end improvement by core configuration");
        table.setHeader({"config", "mean tomography %", "mean perfect %"});
        struct Variant
        {
            const char *name;
            sim::PredictPolicy policy;
            sim::CostModel costs;
        };
        const Variant variants[] = {
            {"telos/not-taken", sim::PredictPolicy::NotTaken,
             sim::telosCostModel()},
            {"telos/btfn", sim::PredictPolicy::BTFN, sim::telosCostModel()},
            {"micaz/not-taken", sim::PredictPolicy::NotTaken,
             sim::micazCostModel()},
        };
        for (const auto &variant : variants) {
            double tomo = 0.0, perfect = 0.0;
            for (const auto &workload : suite) {
                api::PipelineConfig config;
                config.measureInvocations = samples;
                config.evalInvocations = samples * 2;
                config.sim.cyclesPerTick = ticks;
                config.sim.policy = variant.policy;
                config.sim.costs = variant.costs;
                config.seed = seed;
                api::TomographyPipeline pipeline(workload, config);
                auto result = pipeline.run();
                tomo += result.cyclesImprovementPct();
                perfect += result.perfectImprovementPct();
            }
            table.row(variant.name, tomo / double(suite.size()),
                      perfect / double(suite.size()));
        }
        emit(table, "fig6d_coreconfig");
    }

    // (e) Chain heuristic vs exhaustive optimum: on every procedure
    // small enough to brute-force, compare the expected transfer cycles
    // of the Pettis-Hansen order against the true optimum.
    {
        TablePrinter table(
            "Fig 6e: greedy chains vs exhaustive-optimal placement");
        table.setHeader({"workload/proc", "natural cyc", "greedy cyc",
                         "optimal cyc", "greedy gap %"});
        sim::CostModel costs = sim::telosCostModel();
        auto policy = sim::PredictPolicy::NotTaken;

        for (const auto &workload : suite) {
            sim::SimConfig config;
            config.cyclesPerTick = ticks;
            auto inputs = workload.makeInputs(seed);
            sim::Simulator simulator(
                *workload.module, sim::lowerModule(*workload.module),
                config, *inputs, seed ^ 0xbe9c);
            auto run = simulator.run(workload.entry, samples);

            for (const auto &proc : workload.module->procedures()) {
                if (proc.blockCount() > 9 ||
                    run.invocations[proc.id()] == 0) {
                    continue;
                }
                const auto &profile = run.profile[proc.id()];
                Rng rng(seed);
                auto greedy = layout::computeOrder(
                    proc, profile, layout::LayoutKind::ProfileGuided, rng);
                auto best =
                    layout::optimalOrder(proc, profile, costs, policy);

                double c_nat = layout::evaluatePlacement(
                    proc, sim::naturalOrder(proc), profile, costs, policy)
                    .transferCycles;
                double c_greedy = layout::evaluatePlacement(
                    proc, greedy, profile, costs, policy).transferCycles;
                double c_best = layout::evaluatePlacement(
                    proc, best, profile, costs, policy).transferCycles;
                double gap = c_best > 0.0
                                 ? 100.0 * (c_greedy - c_best) / c_best
                                 : 0.0;
                table.row(workload.name + "/" + proc.name(), c_nat,
                          c_greedy, c_best, gap);
            }
        }
        emit(table, "fig6e_optimality");
    }

    // (f) Streaming (online EM) vs batch EM: error of the sink-side
    // O(1)-memory estimator as the report stream grows.
    {
        TablePrinter table(
            "Fig 6f: streaming vs batch EM (suite mean MAE)");
        table.setHeader({"reports seen", "streaming", "batch"});

        std::vector<size_t> points = {50, 200, 1000, size_t(samples)};
        std::vector<CampaignResult> full;
        for (const auto &workload : suite) {
            full.push_back(runCampaign(workload, samples, ticks,
                                       tomography::EstimatorKind::Em, seed));
        }

        for (size_t n : points) {
            double stream_mae = 0.0;
            double batch_mae = 0.0;
            for (size_t w = 0; w < suite.size(); ++w) {
                const auto &workload = suite[w];
                auto durations =
                    full[w].run.trace.durations(workload.entry);
                if (durations.size() > n)
                    durations.resize(n);

                sim::SimConfig config;
                auto lowered = sim::lowerModule(*workload.module);
                auto means = tomography::meanCyclesBottomUp(
                    *workload.module, lowered, config.costs, config.policy,
                    ticks, full[w].run.profile,
                    2.0 * config.costs.timerRead);
                tomography::TimingModel model(
                    workload.entryProc(), lowered.procs[workload.entry],
                    config.costs, config.policy, ticks, means,
                    2.0 * config.costs.timerRead);
                auto truth =
                    full[w].run.profile[workload.entry].branchProbabilities(
                        workload.entryProc());

                tomography::StreamingEstimator streaming(model);
                streaming.observeAll(durations);
                if (!truth.empty()) {
                    stream_mae +=
                        meanAbsoluteError(streaming.theta(), truth);
                    auto batch = tomography::makeEstimator(
                                     tomography::EstimatorKind::Em, {})
                                     ->estimate(model, durations);
                    batch_mae += meanAbsoluteError(batch.theta, truth);
                }
            }
            table.row(n, stream_mae / double(suite.size()),
                      batch_mae / double(suite.size()));
        }
        emit(table, "fig6f_streaming");
    }
    return 0;
}
