/**
 * @file
 * E4 / Fig. 4 — robustness: estimation error versus (a) timer
 * resolution and (b) per-timestamp Gaussian capture jitter. Expected
 * shape: graceful degradation as the timer coarsens past the workloads'
 * path-time separations; jitter is tolerated as long as the estimator's
 * noise kernel is told about it.
 */

#include "common.hh"

#include <cmath>

#include "exec/thread_pool.hh"
#include "util/str.hh"

#include "trace/transforms.hh"

using namespace ct;
using namespace ct::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples", "seed", "jobs"});
    size_t samples = size_t(args.getLong("samples", 3000));
    uint64_t seed = uint64_t(args.getLong("seed", 1));
    size_t jobs = jobsFromArgs(args);

    auto suite = workloads::allWorkloads();
    exec::ThreadPool pool(jobs);

    // (a) Timer-resolution sweep: re-simulate at each quantum (the
    // quantizer is inside the timer, not a post-hoc transform).
    {
        TablePrinter table("Fig 4a: MAE vs timer resolution (em)");
        std::vector<std::string> header = {"cycles/tick", "suite mean"};
        for (const auto &workload : suite)
            header.push_back(workload.name);
        table.setHeader(header);

        for (uint64_t ticks : {1, 2, 4, 8, 16, 32, 64}) {
            auto maes = exec::parallelMap(pool, suite.size(), [&](size_t w) {
                return runCampaign(suite[w], samples, ticks,
                                   tomography::EstimatorKind::Em, seed)
                    .accuracy.mae;
            });
            std::vector<std::string> row = {std::to_string(ticks), ""};
            double sum = 0.0;
            for (double mae : maes) {
                sum += mae;
                row.push_back(formatDouble(mae, 4));
            }
            row[1] = formatDouble(sum / double(suite.size()), 4);
            table.addRow(row);
        }
        emit(table, "fig4a_resolution");
    }

    // (b) Jitter sweep at a fixed 4-cycle quantum: degrade one shared
    // trace per workload, estimating both with and without telling the
    // kernel about the jitter.
    {
        const uint64_t ticks = 4;
        TablePrinter table(
            "Fig 4b: MAE vs capture jitter (em, 4 cycles/tick)");
        table.setHeader({"jitter sigma (ticks)", "kernel informed",
                         "kernel uninformed"});

        auto clean = runCampaigns(suite, samples, ticks,
                                  tomography::EstimatorKind::Em, seed, {},
                                  jobs);

        for (double sigma : {0.0, 0.5, 1.0, 2.0, 4.0}) {
            struct Pair
            {
                double informed = 0.0;
                double uninformed = 0.0;
            };
            auto pairs = exec::parallelMap(pool, suite.size(), [&](size_t w) {
                // Jitter stream depends on (seed, sigma, workload) only,
                // never on scheduling.
                Rng rng(seed * 1000 + uint64_t(sigma * 10));
                auto noisy =
                    trace::addGaussianJitter(clean[w].run.trace, sigma, rng);

                tomography::EstimatorOptions with;
                with.jitterSigmaTicks = sigma;
                auto est_with = estimateFromTrace(
                    suite[w], noisy, ticks, tomography::EstimatorKind::Em,
                    with);
                auto est_without = estimateFromTrace(
                    suite[w], noisy, ticks, tomography::EstimatorKind::Em);

                Pair out;
                out.informed =
                    scoreAccuracy(suite[w], clean[w].run, est_with).mae;
                out.uninformed =
                    scoreAccuracy(suite[w], clean[w].run, est_without).mae;
                return out;
            });
            double informed = 0.0;
            double uninformed = 0.0;
            for (const auto &p : pairs) {
                informed += p.informed;
                uninformed += p.uninformed;
            }
            table.row(sigma, informed / double(suite.size()),
                      uninformed / double(suite.size()));
        }
        emit(table, "fig4b_jitter");
    }

    // (c) Interrupt preemption: unrelated ISRs steal cycles mid-
    // procedure, spreading the measured durations. The kernel has no
    // explicit ISR term, so we report the estimator both blind and
    // with a matched-variance jitter approximation.
    {
        const uint64_t ticks = 4;
        const uint32_t isr_cycles = 30;
        TablePrinter table(
            "Fig 4c: MAE vs ISR preemption rate (em, 4 cycles/tick)");
        table.setHeader({"isr prob/block", "blind", "variance-matched",
                         "mean ISRs/invocation"});

        for (double rate : {0.0, 0.005, 0.02, 0.05, 0.1}) {
            struct Cell
            {
                double blind = 0.0;
                double matched = 0.0;
                double firings = 0.0;
            };
            auto cells = exec::parallelMap(pool, suite.size(), [&](size_t w) {
                const auto &workload = suite[w];
                sim::SimConfig config;
                config.cyclesPerTick = ticks;
                config.isrPerBlockProb = rate;
                config.isrCycles = isr_cycles;
                auto inputs = workload.makeInputs(seed);
                sim::Simulator simulator(
                    *workload.module, sim::lowerModule(*workload.module),
                    config, *inputs, seed ^ 0xbe9c);
                auto run = simulator.run(workload.entry, samples);

                Cell out;
                out.firings = double(run.isrFirings);

                auto est_blind = estimateFromTrace(
                    workload, run.trace, ticks,
                    tomography::EstimatorKind::Em);
                out.blind = scoreAccuracy(workload, run, est_blind).mae;

                // Variance-matched approximation: per-invocation ISR
                // cycles are ~ Binomial(blocks, rate) * isr_cycles; use
                // an average 6-block body for the heuristic sigma.
                double var_cycles = 6.0 * rate * (1.0 - rate) *
                                    double(isr_cycles) * double(isr_cycles);
                tomography::EstimatorOptions options;
                options.jitterSigmaTicks = std::sqrt(
                    var_cycles / 2.0) / double(ticks);
                auto est_matched = estimateFromTrace(
                    workload, run.trace, ticks,
                    tomography::EstimatorKind::Em, options);
                out.matched = scoreAccuracy(workload, run, est_matched).mae;
                return out;
            });
            double blind = 0.0;
            double matched = 0.0;
            double firings = 0.0;
            size_t invocations = samples * suite.size();
            for (const auto &c : cells) {
                blind += c.blind;
                matched += c.matched;
                firings += c.firings;
            }
            table.row(rate, blind / double(suite.size()),
                      matched / double(suite.size()),
                      firings / double(invocations));
        }
        emit(table, "fig4c_isr");
    }
    return 0;
}
