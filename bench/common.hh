/**
 * @file
 * Shared helpers for the experiment harness binaries (one per table /
 * figure of the reproduced evaluation; see DESIGN.md's experiment
 * index). Each binary prints its table to stdout and mirrors it as CSV
 * under results/.
 */

#ifndef CT_BENCH_COMMON_HH
#define CT_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "api/pipeline.hh"
#include "stats/metrics.hh"
#include "tomography/estimator.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "workloads/workload.hh"

namespace ct::bench {

/** Ensure results/ exists and return "results/<name>.csv". */
std::string csvPath(const std::string &name);

/**
 * Print a table and mirror it to results/<csv_name>.csv, reporting the
 * written path. When metrics recording is on (CT_METRICS_OUT set), the
 * obs registry is also dumped to results/<csv_name>.metrics.json.
 * With @p json, the table is additionally mirrored machine-readably to
 * results/<csv_name>.json (see writeTableJson) — the artifact CI
 * uploads for the perf-tracking benches (e.g. BENCH_fleet.json). A
 * csv_name starting with "BENCH_" forces the JSON mirror regardless of
 * @p json: the perf-tracking artifact is part of the naming contract.
 */
void emit(const TablePrinter &table, const std::string &csv_name,
          bool json = false);

/**
 * Write @p table to @p path as one JSON object:
 * `{"title": ..., "header": [...], "rows": [[...], ...]}`.
 * Cells that parse as finite JSON numbers are emitted as numbers,
 * everything else as strings, so downstream tooling gets typed values
 * without a schema.
 */
void writeTableJson(const TablePrinter &table, const std::string &path);

/** Parse --estimator into a kind; fatal() on bad names. */
tomography::EstimatorKind parseEstimator(const std::string &name);

/** Branch-probability accuracy of one estimate vs ground truth. */
struct Accuracy
{
    double mae = 0.0;
    double rmse = 0.0;
    double maxError = 0.0;
    size_t branches = 0;
};

/**
 * Score @p estimate against @p truth over every procedure of
 * @p workload that was invoked and has conditional branches.
 */
Accuracy scoreAccuracy(const workloads::Workload &workload,
                       const sim::RunResult &truth,
                       const tomography::ModuleEstimate &estimate);

/**
 * Run a measurement campaign (natural layout, probes on) and estimate
 * with the given estimator; one-stop helper for the accuracy sweeps.
 */
struct CampaignResult
{
    sim::RunResult run;
    tomography::ModuleEstimate estimate;
    Accuracy accuracy;
};

CampaignResult runCampaign(const workloads::Workload &workload,
                           size_t samples, uint64_t cycles_per_tick,
                           tomography::EstimatorKind kind, uint64_t seed,
                           const tomography::EstimatorOptions &options = {});

/**
 * Resolved worker count for a bench binary: --jobs when given,
 * otherwise auto (CT_JOBS, else hardware threads). Every harness
 * binary accepts --jobs; outputs are bit-identical for every value.
 */
size_t jobsFromArgs(const CliArgs &args);

/**
 * runCampaign() over a whole workload suite, fanned out over a thread
 * pool. result[i] is exactly runCampaign(suite[i], ...) — each
 * campaign's seeds derive from the workload alone, so the outputs are
 * identical for every jobs count (1 = plain serial loop).
 */
std::vector<CampaignResult>
runCampaigns(const std::vector<workloads::Workload> &suite, size_t samples,
             uint64_t cycles_per_tick, tomography::EstimatorKind kind,
             uint64_t seed, const tomography::EstimatorOptions &options = {},
             size_t jobs = 0);

/**
 * Estimate from an existing run's (possibly transformed) trace; used by
 * sweeps that degrade one shared trace instead of re-simulating.
 */
tomography::ModuleEstimate estimateFromTrace(
    const workloads::Workload &workload, const trace::TimingTrace &trace,
    uint64_t cycles_per_tick, tomography::EstimatorKind kind,
    const tomography::EstimatorOptions &options = {});

} // namespace ct::bench

#endif // CT_BENCH_COMMON_HH
