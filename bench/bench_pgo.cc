/**
 * @file
 * E17 — closed-loop continuous PGO: cumulative stale-layout regret as
 * a function of the drift trigger threshold and the tracking bank's
 * forgetting factor (docs/PGO.md, EXPERIMENTS.md E17).
 *
 * One row per (trigger, forgetting) cell on a three-regime schedule
 * (neutral / +offset / -offset): triggers, swaps, final-window
 * mispredict rate, and the cumulative live-minus-oracle regret. The
 * expected shape: a too-high trigger never fires and pays the full
 * stale-layout regret; a reasonable band catches both shifts and
 * flattens the regret curve; shorter forgetting windows (larger
 * factors) react faster but fire on noise when pushed too far.
 *
 *   results/BENCH_pgo.{csv,json} — uploaded as the perf artifact;
 *   decisions are deterministic per cell, wall-clock is not.
 *
 *   bench_pgo --workload alarm_threshold --windows 4 --jobs 8
 */

#include "common.hh"

#include "pgo/pgo.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;
using namespace ct::bench;

namespace {

std::vector<double>
parseDoubles(const std::string &text)
{
    std::vector<double> out;
    for (const auto &part : split(text, ','))
        out.push_back(std::stod(part));
    CT_ASSERT(!out.empty(), "empty sweep list");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "seed", "jobs", "measure", "invocations",
                  "windows", "offset", "triggers", "forgettings"});
    auto workload =
        workloads::workloadByName(args.get("workload", "alarm_threshold"));
    const auto triggers =
        parseDoubles(args.get("triggers", "0.04,0.08,0.16,0.40"));
    const auto forgettings =
        parseDoubles(args.get("forgettings", "0.02,0.05,0.15"));
    const size_t windows = size_t(args.getLong("windows", 4));
    const double offset = args.getDouble("offset", 150.0);

    TablePrinter table("E17 — regret vs trigger threshold x forgetting "
                       "(" + workload.name + ")");
    table.setHeader({"trigger", "forgetting", "triggers", "swaps",
                     "final mr", "cum regret", "regret/window"});

    for (double trigger : triggers) {
        for (double forgetting : forgettings) {
            pgo::PgoConfig config;
            config.seed = uint64_t(args.getLong("seed", 7));
            config.jobs = jobsFromArgs(args);
            config.measureInvocations =
                size_t(args.getLong("measure", 800));
            config.windowInvocations =
                size_t(args.getLong("invocations", 200));
            config.forgetting = forgetting;
            config.drift.trigger = trigger;
            config.drift.clear = trigger / 2.0;
            config.drift.hysteresisWindows = 2;
            config.drift.cooldownWindows = 1;
            config.regimes = {
                pgo::Regime{.windows = windows},
                pgo::Regime{.windows = windows, .senseOffset = -offset},
                pgo::Regime{.windows = windows, .senseOffset = offset},
            };
            pgo::ContinuousPgo loop(workload, config);
            auto result = loop.run();
            table.row(trigger, forgetting, result.triggers, result.swaps,
                      result.finalMispredictRate,
                      result.cumulativeRegretCycles,
                      double(result.cumulativeRegretCycles) /
                          double(result.windows));
        }
    }

    emit(table, "BENCH_pgo", /*json=*/true);
    return 0;
}
