/**
 * @file
 * E10 / Fig. 7 (extension) — procedure placement: ordering procedures
 * in flash by call-graph heat so hot call pairs use the near-call
 * encoding. Weights come from the *tomography-estimated* profile
 * (scaled by the invocation counts the sink observes for free), and
 * the resulting order is compared against the true-profile oracle
 * across a sweep of far-call penalties.
 */

#include "common.hh"

#include "exec/thread_pool.hh"
#include "layout/proc_placement.hh"

using namespace ct;
using namespace ct::bench;

namespace {

sim::RunResult
runWithOrder(const workloads::Workload &workload,
             const std::vector<ir::ProcId> &order,
             const sim::CostModel &costs, size_t invocations, uint64_t seed)
{
    sim::SimConfig config;
    config.costs = costs;
    config.timingProbes = false;
    config.maxGapCycles = 0;
    auto lowered = sim::lowerModule(*workload.module);
    if (!order.empty())
        lowered.setProcOrder(order);
    auto inputs = workload.makeInputs(seed);
    sim::Simulator simulator(*workload.module, std::move(lowered), config,
                             *inputs, seed ^ 0x77);
    return simulator.run(workload.entry, invocations);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples", "eval", "ticks", "seed", "jobs"});
    size_t samples = size_t(args.getLong("samples", 2000));
    size_t eval = size_t(args.getLong("eval", 4000));
    uint64_t ticks = uint64_t(args.getLong("ticks", 4));
    uint64_t seed = uint64_t(args.getLong("seed", 1));

    auto workload = workloads::workloadByName("collection_tree");

    // Measurement campaign + estimation (plain costs: far calls do not
    // perturb the timing model used for estimation).
    auto campaign = runCampaign(workload, samples, ticks,
                                tomography::EstimatorKind::Em, seed);

    // Call weights from the estimate: per-invocation frequencies scaled
    // by the invocation counts the sink observed.
    ir::ModuleProfile estimated = campaign.estimate.profile;
    for (ir::ProcId id = 0; id < workload.module->procedureCount(); ++id) {
        ir::EdgeProfile scaled = estimated[id];
        scaled.scale(double(campaign.run.invocations[id]));
        estimated[id] = scaled;
    }

    auto tomo_order = layout::procedureOrder(*workload.module, estimated);
    auto oracle_order =
        layout::procedureOrder(*workload.module, campaign.run.profile);

    std::vector<ir::ProcId> natural(workload.module->procedureCount());
    for (ir::ProcId id = 0; id < natural.size(); ++id)
        natural[id] = id;

    TablePrinter table(
        "Fig 7: procedure placement vs far-call penalty (collection_tree)");
    table.setHeader({"farCallExtra", "natural cycles", "tomo cycles",
                     "saving %", "far calls natural", "far calls tomo",
                     "order == oracle"});

    const std::vector<uint32_t> penalties = {0u, 3u, 6u, 12u, 24u};
    exec::ThreadPool pool(jobsFromArgs(args));
    struct Row
    {
        sim::RunResult nat;
        sim::RunResult tomo;
    };
    auto rows = exec::parallelMap(pool, penalties.size(), [&](size_t i) {
        sim::CostModel costs = sim::telosCostModel();
        costs.farCallExtra = penalties[i];
        costs.nearCallWindow = 1;
        Row row;
        row.nat = runWithOrder(workload, natural, costs, eval, seed + 1);
        row.tomo = runWithOrder(workload, tomo_order, costs, eval, seed + 1);
        return row;
    });

    for (size_t i = 0; i < penalties.size(); ++i) {
        const auto &nat = rows[i].nat;
        const auto &tomo = rows[i].tomo;
        double saving =
            nat.totalCycles
                ? 100.0 *
                      (double(nat.totalCycles) - double(tomo.totalCycles)) /
                      double(nat.totalCycles)
                : 0.0;
        table.row(size_t(penalties[i]), nat.totalCycles, tomo.totalCycles,
                  saving, nat.farCalls, tomo.farCalls,
                  tomo_order == oracle_order ? "yes" : "no");
    }
    emit(table, "fig7_proc_placement");

    // Companion: expected far-call volume per candidate order.
    TablePrinter orders("Fig 7b: expected far calls per flash order");
    orders.setHeader({"order", "expected far calls (window 1)"});
    orders.row("natural",
               layout::expectedFarCalls(*workload.module,
                                        campaign.run.profile, natural, 1));
    orders.row("tomography",
               layout::expectedFarCalls(*workload.module,
                                        campaign.run.profile, tomo_order, 1));
    orders.row("oracle",
               layout::expectedFarCalls(*workload.module,
                                        campaign.run.profile, oracle_order,
                                        1));
    emit(orders, "fig7b_farcalls");
    return 0;
}
