#include "common.hh"

#include <sys/stat.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace ct::bench {

namespace {

/** Create @p dir (and parents); warn with errno when that fails. */
void
ensureDir(const std::string &dir)
{
    std::string prefix;
    for (const std::string &part : split(dir, '/')) {
        prefix += part;
        if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
            errno != EEXIST) {
            warn("cannot create output directory '", prefix, "': ",
                 std::strerror(errno));
            return;
        }
        prefix += '/';
    }
}

} // namespace

std::string
csvPath(const std::string &name)
{
    ensureDir("results");
    return "results/" + name + ".csv";
}

namespace {

/** True when @p cell is a finite JSON number token verbatim. */
bool
isJsonNumber(const std::string &cell)
{
    if (cell.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(cell.c_str(), &end);
    return end == cell.c_str() + cell.size() && errno == 0 &&
           std::isfinite(value) && cell != "-" &&
           (std::isdigit(uint8_t(cell[0])) || cell[0] == '-');
}

std::string
jsonString(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
writeTableJson(const TablePrinter &table, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open JSON output '", path, "'");
        return;
    }
    out << "{\"title\":" << jsonString(table.title()) << ",\"header\":[";
    for (size_t i = 0; i < table.header().size(); ++i)
        out << (i ? "," : "") << jsonString(table.header()[i]);
    out << "],\"rows\":[";
    for (size_t r = 0; r < table.rows().size(); ++r) {
        out << (r ? "," : "") << '[';
        const auto &row = table.rows()[r];
        for (size_t c = 0; c < row.size(); ++c) {
            out << (c ? "," : "");
            if (isJsonNumber(row[c]))
                out << row[c];
            else
                out << jsonString(row[c]);
        }
        out << ']';
    }
    out << "]}\n";
}

void
emit(const TablePrinter &table, const std::string &csv_name, bool json)
{
    table.print(std::cout);
    CsvWriter csv(csvPath(csv_name));
    table.writeCsv(csv);
    inform("wrote ", csv.path());
    // Every BENCH_* table is a perf-tracking artifact: the JSON mirror
    // is part of its contract (CI uploads results/BENCH_*.json), so it
    // cannot be forgotten at the call site.
    if (csv_name.rfind("BENCH_", 0) == 0)
        json = true;
    if (json) {
        ensureDir("results");
        std::string json_path = "results/" + csv_name + ".json";
        writeTableJson(table, json_path);
        inform("wrote ", json_path);
    }
    // With metrics on (CT_METRICS_OUT set, or enabled in code), mirror
    // the registry next to the results so every bench run leaves its
    // telemetry record alongside the numbers it produced.
    if (obs::metricsEnabled() && !obs::metrics().empty()) {
        std::string metrics_path = "results/" + csv_name + ".metrics.json";
        obs::metrics().writeJson(metrics_path);
        inform("wrote ", metrics_path);
    }
    std::cout << "\n";
}

tomography::EstimatorKind
parseEstimator(const std::string &name)
{
    if (name == "linear")
        return tomography::EstimatorKind::Linear;
    if (name == "em")
        return tomography::EstimatorKind::Em;
    if (name == "moment")
        return tomography::EstimatorKind::Moment;
    fatal("unknown estimator '", name, "' (linear|em|moment)");
}

Accuracy
scoreAccuracy(const workloads::Workload &workload,
              const sim::RunResult &truth,
              const tomography::ModuleEstimate &estimate)
{
    std::vector<double> t_all, e_all;
    for (ir::ProcId id = 0; id < workload.module->procedureCount(); ++id) {
        const auto &proc = workload.module->procedure(id);
        if (truth.invocations[id] == 0 || proc.branchBlocks().empty())
            continue;
        auto t = truth.profile[id].branchProbabilities(proc);
        t_all.insert(t_all.end(), t.begin(), t.end());
        e_all.insert(e_all.end(), estimate.thetas[id].begin(),
                     estimate.thetas[id].end());
    }
    Accuracy out;
    out.branches = t_all.size();
    if (!t_all.empty()) {
        out.mae = meanAbsoluteError(e_all, t_all);
        out.rmse = rootMeanSquareError(e_all, t_all);
        out.maxError = maxAbsoluteError(e_all, t_all);
    }
    return out;
}

CampaignResult
runCampaign(const workloads::Workload &workload, size_t samples,
            uint64_t cycles_per_tick, tomography::EstimatorKind kind,
            uint64_t seed, const tomography::EstimatorOptions &options)
{
    sim::SimConfig config;
    config.cyclesPerTick = cycles_per_tick;
    auto inputs = workload.makeInputs(seed);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, seed ^ 0xbe9c);
    CampaignResult out;
    out.run = simulator.run(workload.entry, samples);
    out.estimate = estimateFromTrace(workload, out.run.trace,
                                     cycles_per_tick, kind, options);
    out.accuracy = scoreAccuracy(workload, out.run, out.estimate);
    return out;
}

size_t
jobsFromArgs(const CliArgs &args)
{
    return exec::resolveJobs(size_t(args.getLong("jobs", 0)));
}

std::vector<CampaignResult>
runCampaigns(const std::vector<workloads::Workload> &suite, size_t samples,
             uint64_t cycles_per_tick, tomography::EstimatorKind kind,
             uint64_t seed, const tomography::EstimatorOptions &options,
             size_t jobs)
{
    exec::ThreadPool pool(jobs);
    return exec::parallelMap(pool, suite.size(), [&](size_t i) {
        return runCampaign(suite[i], samples, cycles_per_tick, kind, seed,
                           options);
    });
}

tomography::ModuleEstimate
estimateFromTrace(const workloads::Workload &workload,
                  const trace::TimingTrace &trace, uint64_t cycles_per_tick,
                  tomography::EstimatorKind kind,
                  const tomography::EstimatorOptions &options)
{
    sim::SimConfig config;
    auto lowered = sim::lowerModule(*workload.module);
    auto estimator = tomography::makeEstimator(kind, options);
    return tomography::estimateModule(
        *workload.module, lowered, config.costs, config.policy,
        cycles_per_tick, 2.0 * double(config.costs.timerRead), trace,
        *estimator);
}

} // namespace ct::bench
