/**
 * @file
 * store_tool: inspect, check, and compact a ct::store directory — the
 * operator's view of a durable profile store (docs/STORE.md).
 *
 *   store_tool inspect <dir>   list segments, checkpoints, WAL coverage
 *   store_tool fsck <dir>      read-only integrity check (exit 1 if NOT ok)
 *   store_tool compact <dir>   prune old checkpoints, then drop
 *                              segments covered by the oldest
 *                              *retained* checkpoint
 *   store_tool demo [<dir>]    build a small store (simulated campaign
 *                              with a mid-way checkpoint) to poke at;
 *                              also writes the checkpoint as a shipped
 *                              relay snapshot (<dir>/snapshot.ctsnap)
 *   store_tool snapshot <file> [--store <dir>]
 *                              dump a relay snapshot image (header,
 *                              per-(mote, proc) observation counts,
 *                              digest); with --store, cross-check the
 *                              digest against the store's newest
 *                              checkpoint (read-only, exit 1 on
 *                              mismatch or invalid image)
 *
 * `fsck` never writes: a store with a torn tail reports ok (that is
 * the expected crash artifact; opening the store truncates it), while
 * mid-log corruption or a missing ordinal range reports NOT ok.
 */

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>

#include "fleet/fleet.hh"
#include "net/collector.hh"
#include "relay/snapshot.hh"
#include "sim/lower.hh"
#include "sim/machine.hh"
#include "store/checkpoint.hh"
#include "store/format.hh"
#include "store/store.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

using namespace ct;

namespace fs = std::filesystem;

namespace {

int
cmdInspect(const std::string &dir)
{
    if (!fs::is_directory(dir))
        fatal("not a directory: ", dir);

    std::cout << "store: " << dir << "\n\nsegments:\n";
    for (uint64_t id : store::listSegmentIds(dir)) {
        auto path = (fs::path(dir) / store::segmentFileName(id)).string();
        auto scan = store::scanSegment(path, id, nullptr);
        const char *state =
            scan.end == store::ScanEnd::CleanEof    ? "clean"
            : scan.end == store::ScanEnd::TornTail  ? "torn tail"
                                                    : "BAD HEADER";
        std::printf("  %s  ordinals [%llu, %llu)  %llu records  "
                    "%zu bytes  %s\n",
                    store::segmentFileName(id).c_str(),
                    (unsigned long long)scan.firstOrdinal,
                    (unsigned long long)(scan.firstOrdinal + scan.records),
                    (unsigned long long)scan.records, scan.fileBytes,
                    state);
    }

    std::cout << "\ncheckpoints:\n";
    for (uint64_t id : store::listCheckpointIds(dir)) {
        auto path = (fs::path(dir) / store::checkpointFileName(id)).string();
        auto bytes = store::readFileBytes(path);
        std::cout << "  " << store::checkpointFileName(id) << ":\n";
        store::CheckpointHeader header;
        if (!bytes || !store::decodeCheckpointHeader(*bytes, header)) {
            std::cout << "    (unreadable header)\n";
            continue;
        }
        // Indent the stable header rendering (the golden-snapshot form).
        std::string desc = store::describeCheckpointHeader(header);
        size_t pos = 0, nl;
        while ((nl = desc.find('\n', pos)) != std::string::npos) {
            std::cout << "    " << desc.substr(pos, nl - pos) << "\n";
            pos = nl + 1;
        }
        store::Checkpoint full;
        std::cout << "    body: "
                  << (bytes && store::decodeCheckpoint(*bytes, full)
                          ? "valid"
                          : "INVALID")
                  << "\n";
    }
    return 0;
}

int
cmdFsck(const std::string &dir)
{
    if (!fs::is_directory(dir))
        fatal("not a directory: ", dir);
    // A sharded fleet root (shard-NNN subdirectories) is fscked shard
    // by shard with a per-shard verdict; one damaged shard fails the
    // whole check but never hides the others' reports.
    auto shards = fleet::shardStoreDirs(dir);
    if (shards.empty()) {
        auto report = store::fsckStore(dir);
        std::cout << report.text();
        return report.ok ? 0 : 1;
    }
    size_t bad = 0;
    for (const auto &shard_dir : shards) {
        auto report = store::fsckStore(shard_dir);
        std::cout << fs::path(shard_dir).filename().string() << ": "
                  << (report.ok ? "ok" : "DAMAGED") << "\n";
        std::cout << report.text();
        bad += report.ok ? 0 : 1;
    }
    std::cout << "sharded store: " << shards.size() << " shards, " << bad
              << " damaged\n";
    return bad == 0 ? 0 : 1;
}

int
cmdCompact(const std::string &dir)
{
    store::Store store(dir, {});
    size_t before = store.segments().size();
    store.compact();
    std::cout << "compacted: " << before << " -> "
              << store.segments().size() << " segments, "
              << store::listCheckpointIds(dir).size()
              << " checkpoints kept, next ordinal " << store.nextOrdinal()
              << "\n";
    return 0;
}

int
cmdSnapshot(const std::string &file, const CliArgs &args)
{
    auto image = relay::readSnapshotImage(file);
    if (!image)
        fatal("cannot read snapshot image: ", file);

    std::cout << "snapshot: " << file << " (" << image->size()
              << " bytes)\n";
    relay::SnapshotHeader header;
    if (!relay::decodeSnapshotHeader(*image, header)) {
        std::cout << "header: unreadable (image shorter than the fixed "
                     "header)\n";
        return 1;
    }
    std::cout << relay::describeSnapshotHeader(header);
    std::cout << "fragments at default mtu: "
              << relay::fragmentCount(image->size()) << "\n";

    relay::Snapshot snapshot;
    bool valid = relay::decodeSnapshotImage(*image, snapshot);
    std::cout << "image: " << (valid ? "valid" : "INVALID") << "\n";
    if (!valid)
        return 1;

    std::set<uint16_t> motes;
    std::set<uint32_t> procs;
    uint64_t observations = 0;
    std::cout << "slots:\n";
    for (const auto &slot : snapshot.slots) {
        motes.insert(slot.mote);
        procs.insert(slot.proc);
        observations += slot.state.count;
        std::printf("  mote %5u  proc %3u  %8llu observations  "
                    "%zu thetas\n",
                    slot.mote, slot.proc,
                    (unsigned long long)slot.state.count,
                    slot.state.theta.size());
    }
    std::cout << "total: " << snapshot.slots.size() << " slots, "
              << motes.size() << " motes, " << procs.size()
              << " procedures, " << observations << " observations\n";

    std::string store_dir = args.get("store", "");
    if (store_dir.empty())
        return 0;

    // Read-only cross-check against the live store: decode its newest
    // checkpoint straight off disk (no Store open, no recovery side
    // effects) and compare campaign digests.
    auto ids = store::listCheckpointIds(store_dir);
    if (ids.empty())
        fatal("no checkpoints in store: ", store_dir);
    auto path =
        (fs::path(store_dir) / store::checkpointFileName(ids.back()))
            .string();
    auto bytes = store::readFileBytes(path);
    store::Checkpoint checkpoint;
    if (!bytes || !store::decodeCheckpoint(*bytes, checkpoint))
        fatal("cannot decode checkpoint: ", path);
    uint64_t store_digest = fleet::snapshotDigest(checkpoint.slots);
    bool match = store_digest == snapshot.digest();
    std::printf("store %s checkpoint %llu digest: %016llx  %s\n",
                store_dir.c_str(), (unsigned long long)ids.back(),
                (unsigned long long)store_digest,
                match ? "MATCH" : "MISMATCH");
    return match ? 0 : 1;
}

int
cmdDemo(const std::string &dir, const CliArgs &args)
{
    auto workload =
        workloads::workloadByName(args.get("workload", "crc16"));
    size_t samples = size_t(args.getLong("samples", 400));
    uint64_t seed = uint64_t(args.getLong("seed", 1));

    sim::SimConfig sim_config;
    auto lowered = sim::lowerModule(*workload.module);
    auto inputs = workload.makeInputs(seed);
    sim::Simulator simulator(*workload.module, lowered, sim_config, *inputs,
                             seed ^ 0x570e);
    auto trace = simulator.run(workload.entry, samples).trace;

    store::StoreConfig config;
    config.segmentBytes = 4096; // small segments so rotation is visible
    store::Store store(dir, config);
    net::EstimatorBank bank(*workload.module, lowered, sim_config.costs,
                            sim_config.policy, sim_config.cyclesPerTick, {},
                            2.0 * sim_config.costs.timerRead);
    const auto &records = trace.records();
    for (size_t i = 0; i < records.size(); ++i) {
        store.append(1, records[i]);
        bank.observe(1, records[i]);
        if (i + 1 == records.size() / 2)
            store.writeCheckpoint(bank.snapshot());
    }
    store.flush();

    // Also ship the checkpoint as a relay snapshot: read the newest
    // checkpoint back off disk and wrap it, so id, walOrdinal, and
    // digest agree exactly with what `snapshot --store` cross-checks.
    auto ids = store::listCheckpointIds(dir);
    auto ck_path =
        (fs::path(dir) / store::checkpointFileName(ids.back())).string();
    auto ck_bytes = store::readFileBytes(ck_path);
    store::Checkpoint checkpoint;
    if (!ck_bytes || !store::decodeCheckpoint(*ck_bytes, checkpoint))
        fatal("demo checkpoint unreadable: ", ck_path);
    auto snap_path = (fs::path(dir) / "snapshot.ctsnap").string();
    relay::writeSnapshotFile(
        snap_path,
        relay::snapshotFromCheckpoint(checkpoint, /*source_node=*/1));

    std::cout << "demo store at " << dir << ": " << records.size()
              << " records (" << workload.name << "), "
              << store.segments().size()
              << " segments, 1 checkpoint at ordinal "
              << records.size() / 2 << "\n"
              << "relay snapshot at " << snap_path << "\n"
              << "try: store_tool inspect " << dir << "\n"
              << "try: store_tool snapshot " << snap_path << " --store "
              << dir << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"workload", "samples", "seed", "store"});
    const auto &pos = args.positional();
    if (pos.empty())
        fatal("usage: store_tool inspect|fsck|compact|demo <dir> "
              "[--workload crc16] [--samples 400] [--seed 1] | "
              "store_tool snapshot <file> [--store <dir>]");

    const std::string &cmd = pos[0];
    std::string dir = pos.size() > 1 ? pos[1] : "store_demo";
    if (cmd == "inspect")
        return cmdInspect(dir);
    if (cmd == "fsck")
        return cmdFsck(dir);
    if (cmd == "compact")
        return cmdCompact(dir);
    if (cmd == "demo")
        return cmdDemo(dir, args);
    if (cmd == "snapshot") {
        if (pos.size() < 2)
            fatal("usage: store_tool snapshot <file> [--store <dir>]");
        return cmdSnapshot(pos[1], args);
    }
    fatal("unknown command: ", cmd,
          " (expected inspect|fsck|compact|demo|snapshot)");
}
