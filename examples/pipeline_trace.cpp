/**
 * @file
 * Observability demo: run the full pipeline on one workload with the
 * span tracer and metrics registry on, writing trace.json (Chrome
 * trace-event format — open in chrome://tracing or ui.perfetto.dev)
 * and metrics.json (counters, stage latencies, and the EM estimator's
 * per-iteration convergence series) next to the working directory.
 *
 *   ./pipeline_trace [--workload crc16] [--samples 2000]
 *                    [--estimator em] [--ticks 8] [--seed 1]
 *                    [--trace-out trace.json] [--metrics-out metrics.json]
 */

#include <iostream>

#include "api/pipeline.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace ct;

namespace {

tomography::EstimatorKind
parseEstimator(const std::string &name)
{
    if (name == "linear")
        return tomography::EstimatorKind::Linear;
    if (name == "em")
        return tomography::EstimatorKind::Em;
    if (name == "moment")
        return tomography::EstimatorKind::Moment;
    fatal("unknown estimator '", name, "' (linear|em|moment)");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "samples", "estimator", "ticks", "seed",
                  "trace-out", "metrics-out"});

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.estimator = parseEstimator(args.get("estimator", "em"));
    config.sim.cyclesPerTick = uint64_t(args.getLong("ticks", 8));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.traceOut = args.get("trace-out", "trace.json");
    config.metricsOut = args.get("metrics-out", "metrics.json");

    auto workload =
        workloads::workloadByName(args.get("workload", "crc16"));

    api::TomographyPipeline pipeline(workload, config);
    auto result = pipeline.run();

    auto &m = obs::metrics();
    std::cout << "workload            " << workload.name << "\n"
              << "spans recorded      " << obs::tracer().eventCount()
              << "\n"
              << "em iterations       "
              << m.counter("tomography.em.iterations").value() << "\n"
              << "branch MAE          " << result.branchMae << "\n"
              << "cycles improvement  " << result.cyclesImprovementPct()
              << "%\n"
              << "\nopen " << config.traceOut
              << " in https://ui.perfetto.dev to see the stage spans.\n";
    return 0;
}
