/**
 * @file
 * Timer-resolution study for one workload: where does boundary-timing
 * estimation break down, and does the identifiability diagnostic
 * predict it? For each timer quantum the example prints the per-branch
 * separation (in ticks) next to the per-branch estimation error —
 * branches whose separation falls below ~1 tick become invisible.
 */

#include <cmath>
#include <iostream>

#include "sim/machine.hh"
#include "tomography/estimator.hh"
#include "tomography/timing_model.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/str.hh"
#include "workloads/workload.hh"

using namespace ct;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"workload", "samples", "seed"});
    auto workload =
        workloads::workloadByName(args.get("workload", "trickle"));
    size_t samples = size_t(args.getLong("samples", 3000));
    uint64_t seed = uint64_t(args.getLong("seed", 5));

    std::cout << "workload: " << workload.name << " — "
              << workload.description << "\n\n";

    const auto &proc = workload.entryProc();
    size_t branches = proc.branchBlocks().size();

    TablePrinter table("per-branch separation vs estimation error (" +
                       workload.name + ")");
    std::vector<std::string> header = {"cycles/tick"};
    for (size_t b = 0; b < branches; ++b) {
        header.push_back("b" + std::to_string(b) + " sep");
        header.push_back("b" + std::to_string(b) + " err");
    }
    table.setHeader(header);

    for (uint64_t ticks : {1, 2, 4, 8, 16, 32}) {
        sim::SimConfig config;
        config.cyclesPerTick = ticks;
        auto inputs = workload.makeInputs(seed);
        sim::Simulator simulator(*workload.module,
                                 sim::lowerModule(*workload.module), config,
                                 *inputs, seed ^ 0x51);
        auto run = simulator.run(workload.entry, samples);

        auto lowered = sim::lowerModule(*workload.module);
        auto estimator =
            tomography::makeEstimator(tomography::EstimatorKind::Em, {});
        auto estimate = tomography::estimateModule(
            *workload.module, lowered, config.costs, config.policy, ticks,
            2.0 * config.costs.timerRead, run.trace, *estimator);

        auto means = tomography::meanCyclesBottomUp(
            *workload.module, lowered, config.costs, config.policy, ticks,
            run.profile, 2.0 * config.costs.timerRead);
        tomography::TimingModel model(proc, lowered.procs[workload.entry],
                                      config.costs, config.policy, ticks,
                                      means,
                                      2.0 * config.costs.timerRead);
        auto truth = run.profile[workload.entry].branchProbabilities(proc);
        auto diags = model.branchDiagnostics(truth);

        std::vector<std::string> row = {std::to_string(ticks)};
        for (size_t b = 0; b < branches; ++b) {
            row.push_back(formatDouble(diags[b].separationTicks, 2));
            row.push_back(formatDouble(
                std::abs(estimate.thetas[workload.entry][b] - truth[b]), 3));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nReading guide: 'sep' is the timing separation of the\n"
                 "branch's two arms in timer ticks; once it drops below\n"
                 "about one tick the decision stops being visible in\n"
                 "boundary measurements and the error ('err') grows.\n";
    return 0;
}
