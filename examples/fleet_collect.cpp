/**
 * @file
 * Fleet-scale ingest demo: many simulated motes stream pre-framed
 * boundary-timing traffic into the sharded collection pipeline
 * (ct::fleet), each shard owning its own collector, estimator bank,
 * and optional durable store under <store>/shard-NNN.
 *
 * Output: a per-shard table (motes, frames, records, ingest latency
 * quantiles) plus campaign totals — throughput in records/s and the
 * merged-snapshot digest, the fingerprint that stays identical across
 * any --shards and --jobs combination. Point --store at a directory
 * to persist the campaign, then rerun with the same --store to watch
 * sharded recovery resume every shard's bank, or inspect it with
 * `store_tool fsck <dir>` for the per-shard verdicts.
 */

#include <iomanip>
#include <iostream>

#include "fleet/fleet.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "workloads/workload.hh"

using namespace ct;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "motes", "records", "shards", "jobs", "seed",
                  "store", "locking"});
    auto workload =
        workloads::workloadByName(args.get("workload", "event_dispatch"));

    fleet::ShardedFleetConfig config;
    config.motes = size_t(args.getLong("motes", 1000));
    config.invocations = size_t(args.getLong("records", 8));
    config.collector.shards = size_t(args.getLong("shards", 4));
    config.jobs = size_t(args.getLong("jobs", 0));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.collector.storeDir = args.get("store", "");
    if (args.get("locking", "shard") == "global")
        config.collector.locking = fleet::Locking::Global;

    std::cout << "workload: " << workload.name << " — "
              << workload.description << "\n"
              << "fleet: " << config.motes << " motes x "
              << config.invocations << " records, "
              << config.collector.shards << " shards"
              << (config.collector.storeDir.empty()
                      ? std::string(", volatile")
                      : ", durable at " + config.collector.storeDir)
              << "\n\n";

    auto result = fleet::runShardedFleet(workload, config);

    TablePrinter table("per-shard ingest");
    table.setHeader({"shard", "motes", "frames", "records", "estimators",
                     "p50 us", "p99 us"});
    for (const auto &shard : result.shards) {
        table.row(shard.shard, shard.motes, shard.frames, shard.records,
                  shard.estimators, shard.p50IngestNs / 1000,
                  shard.p99IngestNs / 1000);
    }
    table.print(std::cout);

    std::cout << "\ncampaign: " << result.totalRecords() << " records in "
              << std::fixed << std::setprecision(3) << result.ingestSeconds
              << " s  ("
              << std::setprecision(0) << result.recordsPerSecond()
              << " records/s; arena build " << std::setprecision(3)
              << result.buildSeconds << " s)\n"
              << "merged snapshot: " << result.estimators
              << " estimators, digest " << std::hex << std::showbase
              << result.mergedDigest << std::dec << std::noshowbase
              << "\n";
    return 0;
}
