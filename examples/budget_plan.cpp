/**
 * @file
 * Budgeted placement planning demo (docs/BUDGET.md), two modes.
 *
 * Single mote (default): run the full pipeline with the budget stage
 * enabled and show what a reprogramming budget costs — the chosen
 * per-procedure upgrades, what was deferred, which budget dimension
 * bound, the greedy/exact optimality gap, and the "budget" layout's
 * measured cycles next to the unconstrained candidates.
 *
 *   ./budget_plan [--workload crc16] [--samples 2000] [--eval 5000]
 *                 [--seed 1] [--jobs 0] [--flash-bytes 64]
 *                 [--ram-bytes -] [--energy-uj -]
 *                 [--solver auto|exact|greedy] [--energy-weight 0]
 *
 * Heterogeneous fleet (--classes): run a sharded ingest campaign, then
 * plan every shard's knapsack under its hardware class's budget
 * (fleet::planShardBudgets) and print the per-shard decisions.
 *
 *   ./budget_plan --classes rich:256:-:-,lean:48:-:- [--motes 64]
 *                 [--records 8] [--shards 4] [--jobs 0] [--seed 1]
 *
 * A class is name:flash_bytes:ram_bytes:energy_uj; "-" leaves that
 * dimension unconstrained. Budgets are per re-placement round.
 *
 * Output is bit-identical for every --jobs value in both modes (the
 * CI determinism lane diffs 1 vs 8): nothing wall-clock-derived is
 * printed, and every parallel stage writes indexed slots.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "api/pipeline.hh"
#include "fleet/fleet.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;

namespace {

/** "64" -> 64, "-" (or "inf") -> kUnlimited. */
uint64_t
parseLimit(const std::string &text)
{
    if (text == "-" || text == "inf" || text == "unlimited")
        return budget::kUnlimited;
    return uint64_t(std::stoull(text));
}

/** Byte-granular budget: flash_bytes / ram_bytes / energy_uj fields. */
budget::BudgetSpec
makeSpec(uint64_t flash_bytes, uint64_t ram_bytes, uint64_t energy_uj)
{
    budget::BudgetSpec spec;
    spec.pageBytes = 1; // flashPages counts bytes
    spec.flashPages = flash_bytes;
    spec.ramBytes = ram_bytes;
    spec.energyNanojoules = energy_uj == budget::kUnlimited
                                ? budget::kUnlimited
                                : energy_uj * 1000;
    return spec;
}

budget::Solver
parseSolver(const std::string &name)
{
    if (name == "auto")
        return budget::Solver::Auto;
    if (name == "exact")
        return budget::Solver::Exact;
    if (name == "greedy")
        return budget::Solver::Greedy;
    fatal("unknown --solver '", name, "' (auto|exact|greedy)");
    return budget::Solver::Auto;
}

/** "name:flash:ram:energy_uj,..." -> mote classes. */
std::vector<fleet::MoteClass>
parseClasses(const std::string &spec)
{
    std::vector<fleet::MoteClass> classes;
    std::stringstream ss(spec);
    for (std::string item; std::getline(ss, item, ',');) {
        if (item.empty())
            continue;
        std::vector<std::string> fields;
        std::stringstream fs(item);
        for (std::string field; std::getline(fs, field, ':');)
            fields.push_back(field);
        if (fields.size() != 4)
            fatal("--classes entry '", item,
                  "' is not name:flash_bytes:ram_bytes:energy_uj");
        fleet::MoteClass cls;
        cls.name = fields[0];
        cls.budget = makeSpec(parseLimit(fields[1]), parseLimit(fields[2]),
                              parseLimit(fields[3]));
        classes.push_back(std::move(cls));
    }
    if (classes.empty())
        fatal("--classes parsed to an empty list: '", spec, "'");
    return classes;
}

std::string
limitText(uint64_t value)
{
    return value == budget::kUnlimited ? std::string("-")
                                       : std::to_string(value);
}

std::string
bindingText(const budget::BudgetPlan &plan)
{
    std::string binding;
    if (plan.flashBinding)
        binding += "F";
    if (plan.ramBinding)
        binding += "R";
    if (plan.energyBinding)
        binding += "E";
    return binding.empty() ? "-" : binding;
}

int
runSingleMote(const CliArgs &args)
{
    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.evalInvocations = size_t(args.getLong("eval", 5000));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.jobs = size_t(args.getLong("jobs", 0));
    config.budget.enabled = true;
    config.budget.spec =
        makeSpec(parseLimit(args.get("flash-bytes", "64")),
                 parseLimit(args.get("ram-bytes", "-")),
                 parseLimit(args.get("energy-uj", "-")));
    config.budget.solver = parseSolver(args.get("solver", "auto"));
    config.budget.options.energyWeight =
        args.getDouble("energy-weight", 0.0);

    auto workload =
        workloads::workloadByName(args.get("workload", "crc16"));

    std::cout << "=== budgeted placement: " << workload.name << " ===\n"
              << "budget: flash " << limitText(config.budget.spec.flashBytes())
              << " B, ram " << limitText(config.budget.spec.ramBytes)
              << " B, energy "
              << limitText(config.budget.spec.energyNanojoules) << " nJ\n\n";

    api::TomographyPipeline pipeline(workload, config);
    auto result = pipeline.run();
    const auto &outcome = result.budget;
    const auto &plan = outcome.plan;

    {
        TablePrinter table("per-procedure decision (" + plan.solver +
                           " solver)");
        table.setHeader({"procedure", "chosen", "gain cyc/event",
                         "flash B"});
        for (const auto &choice : outcome.choices)
            table.row(choice.proc, choice.candidate,
                      choice.gainCyclesPerEvent, choice.flashBytes);
        table.print(std::cout);
    }

    std::cout << "\nplan: " << plan.upgrades << " upgrade(s), "
              << plan.deferred << " deferred; flash used "
              << plan.assignment.usage.flashBytes << " B, ram "
              << plan.assignment.usage.ramBytes << " B, energy "
              << plan.assignment.usage.energyNanojoules
              << " nJ; binding: " << bindingText(plan) << "\n";
    if (plan.exactRan)
        std::cout << "solvers: greedy " << formatDouble(plan.greedyGain, 4)
                  << " vs exact " << formatDouble(plan.exactGain, 4)
                  << " (gap " << formatDouble(plan.optimalityGapPct, 4)
                  << "%)\n";
    else if (!plan.exactSkipReason.empty())
        std::cout << "solvers: exact skipped (" << plan.exactSkipReason
                  << ")\n";

    {
        TablePrinter table("evaluated layouts");
        table.setHeader({"layout", "total cycles", "mispredict %"});
        for (const auto &layout : result.outcomes)
            table.row(layout.name, layout.totalCycles,
                      100.0 * layout.mispredictRate);
        table.print(std::cout);
    }

    const auto &natural = result.outcome("natural");
    const auto &budgeted = result.outcome("budget");
    const auto &tomography = result.outcome("tomography");
    double budget_pct =
        natural.totalCycles
            ? 100.0 * (1.0 - double(budgeted.totalCycles) /
                                 double(natural.totalCycles))
            : 0.0;
    double unconstrained_pct =
        natural.totalCycles
            ? 100.0 * (1.0 - double(tomography.totalCycles) /
                                 double(natural.totalCycles))
            : 0.0;
    std::cout << "\nbudgeted placement saves "
              << formatDouble(budget_pct, 2)
              << "% of cycles vs natural (unconstrained tomography: "
              << formatDouble(unconstrained_pct, 2) << "%).\n";
    return 0;
}

int
runFleet(const CliArgs &args)
{
    auto workload =
        workloads::workloadByName(args.get("workload", "event_dispatch"));
    auto classes = parseClasses(args.get("classes", ""));

    fleet::ShardedFleetConfig config;
    config.motes = size_t(args.getLong("motes", 64));
    config.invocations = size_t(args.getLong("records", 8));
    config.collector.shards = size_t(args.getLong("shards", 4));
    config.jobs = size_t(args.getLong("jobs", 0));
    config.seed = uint64_t(args.getLong("seed", 1));

    std::cout << "=== heterogeneous-fleet budget plan: " << workload.name
              << " ===\n"
              << "fleet: " << config.motes << " motes x "
              << config.invocations << " records, "
              << config.collector.shards << " shards, " << classes.size()
              << " hardware class(es)\n\n";

    std::unique_ptr<fleet::ShardedCollector> collector;
    auto campaign = fleet::runShardedFleet(workload, config, &collector);

    auto lowered = sim::lowerModule(*workload.module);
    sim::SimConfig sim_config;

    fleet::FleetPlanConfig plan_config;
    plan_config.classes = classes;
    plan_config.entry = workload.entry;
    plan_config.jobs = size_t(args.getLong("jobs", 0));
    auto plans =
        fleet::planShardBudgets(*workload.module, lowered, sim_config.costs,
                                sim_config.policy, *collector, plan_config);

    TablePrinter table("per-shard budgeted placement");
    table.setHeader({"shard", "class", "flash budget B", "estimators",
                     "upgrades", "deferred", "gain cyc/event",
                     "flash used B", "binding", "layout digest"});
    for (const auto &shard : plans) {
        const auto &cls = classes[shard.shard % classes.size()];
        std::ostringstream digest;
        digest << std::hex << std::showbase << shard.layoutDigest;
        table.row(shard.shard, shard.className,
                  limitText(cls.budget.flashBytes()), shard.estimators,
                  shard.plan.upgrades, shard.plan.deferred,
                  shard.plan.assignment.gainCyclesPerEvent,
                  shard.plan.assignment.usage.flashBytes,
                  bindingText(shard.plan), digest.str());
    }
    table.print(std::cout);

    // Distinct budgets should buy distinct layouts when they bind.
    size_t distinct = 0;
    for (size_t i = 0; i < plans.size(); ++i) {
        bool seen = false;
        for (size_t j = 0; j < i; ++j)
            seen = seen || plans[j].layoutDigest == plans[i].layoutDigest;
        distinct += seen ? 0 : 1;
    }
    std::cout << "\ncampaign: " << campaign.totalRecords()
              << " records into " << campaign.estimators
              << " estimators; " << distinct
              << " distinct layout(s) across " << plans.size()
              << " shard(s).\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "samples", "eval", "seed", "jobs",
                  "flash-bytes", "ram-bytes", "energy-uj", "solver",
                  "energy-weight", "classes", "motes", "records",
                  "shards"});
    if (args.has("classes"))
        return runFleet(args);
    return runSingleMote(args);
}
