/**
 * @file
 * Bring-your-own-program example: build a mote application with the IR
 * builder, attach input streams, and run the complete Code Tomography
 * pipeline on it — the workflow a downstream user follows to optimize
 * their own sensor firmware.
 *
 * The program is a soil-moisture irrigation controller: read the
 * moisture sensor, branch on a dry/wet threshold, debounce via a RAM
 * counter, and open the valve (radio command) only after three
 * consecutive dry readings.
 */

#include <iostream>

#include "api/pipeline.hh"
#include "ir/builder.hh"
#include "ir/dump.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/str.hh"

using namespace ct;

namespace {

workloads::Workload
buildIrrigationController()
{
    using ir::CondCode;
    auto module = std::make_shared<ir::Module>("irrigation");

    ir::ProcedureBuilder b(*module, "moisture_check");
    auto dry = b.newBlock("dry_reading");
    auto open_valve = b.newBlock("open_valve");
    auto keep_waiting = b.newBlock("keep_waiting");
    auto wet = b.newBlock("wet_reading");
    auto done = b.newBlock("done");

    // entry: sample the moisture sensor and compare with the dry
    // threshold. Below 400 counts means the soil is drying out.
    b.setBlock(0);
    b.sense(1, 0)
        .li(2, 400)
        .li(3, 0) // address of the debounce counter
        .ld(4, 3, 0);
    b.br(CondCode::Lt, 1, 2, dry, wet);

    // Dry: bump the debounce counter; open the valve on the third
    // consecutive dry reading.
    b.setBlock(dry);
    b.addi(4, 4, 1)
        .st(3, 0, 4)
        .li(5, 3);
    b.br(CondCode::Ge, 4, 5, open_valve, keep_waiting);

    b.setBlock(open_valve);
    b.li(6, 0x0A11) // "valve open" command word
        .radioTx(6)
        .li(4, 0)
        .st(3, 0, 4); // reset the debounce counter
    b.jmp(done);

    b.setBlock(keep_waiting);
    b.sleep(6);
    b.jmp(done);

    // Wet: clear the debounce counter and nap.
    b.setBlock(wet);
    b.li(4, 0)
        .st(3, 0, 4)
        .sleep(10);
    b.jmp(done);

    b.setBlock(done);
    b.ret();

    workloads::Workload w;
    w.name = "irrigation";
    w.description = "soil-moisture valve controller with 3-sample debounce";
    w.module = module;
    w.entry = b.finish();
    w.makeInputs = [](uint64_t seed) {
        auto inputs = std::make_unique<sim::ScriptedInputs>(seed);
        // Moisture counts: mostly wet-ish, drifting dry in bursts.
        inputs->setChannel(0, makeGaussian(470.0, 90.0));
        return inputs;
    };
    w.inputNotes = "ch0 ~ Normal(470, 90); dry threshold 400";
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"samples", "ticks", "seed", "dump"});

    auto workload = buildIrrigationController();
    if (args.getBool("dump", false))
        std::cout << ir::dumpModule(*workload.module);

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 3000));
    config.sim.cyclesPerTick = uint64_t(args.getLong("ticks", 4));
    config.seed = uint64_t(args.getLong("seed", 7));

    std::cout << "custom workload: " << workload.description << "\n\n";

    api::TomographyPipeline pipeline(workload, config);
    auto result = pipeline.run();

    TablePrinter theta("branch probabilities (true vs estimated)");
    theta.setHeader({"branch", "true", "estimated"});
    for (size_t i = 0; i < result.trueTheta.size(); ++i)
        theta.row("b" + std::to_string(i), result.trueTheta[i],
                  result.estimatedTheta[i]);
    theta.print(std::cout);

    TablePrinter table("placement outcomes");
    table.setHeader({"layout", "mispredict rate", "cycles", "energy (uJ)"});
    for (const auto &out : result.outcomes)
        table.row(out.name, out.mispredictRate, out.totalCycles,
                  out.energyMicrojoules);
    table.print(std::cout);

    std::cout << "\ntomography saves "
              << formatDouble(result.cyclesImprovementPct(), 2)
              << "% cycles and "
              << formatDouble(result.energyImprovementPct(), 2)
              << "% energy vs the natural layout (oracle: "
              << formatDouble(result.perfectImprovementPct(), 2) << "%)\n";
    return 0;
}
