/**
 * @file
 * ir_tool: drive the pipeline on a program stored as textual IR.
 *
 *   ir_tool <file.ir> --entry <proc> [--ch0 gauss:500,80]
 *           [--ch1 bern:0.7] [--radio discrete:0=0.6,1=0.3,2=0.1]
 *           [--samples 2000] [--ticks 4] [--seed 1] [--dump]
 *
 * Input-stream specs: see workloads::inputSpecGrammar().
 *
 * With no file argument the tool prints a ready-to-edit sample program
 * so `ir_tool --emit-sample > app.ir` bootstraps a new experiment.
 */

#include <iostream>

#include "api/pipeline.hh"
#include "ir/dump.hh"
#include "ir/parse.hh"
#include "workloads/input_spec.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;

namespace {

const char *kSample = R"(; sample program for ir_tool — edit freely
module sample
proc main {
  bb0 (entry):
    sense r1, ch0
    li r2, 500
    br.lt r1, r2 -> bb1 else bb2
  bb1 (low):
    sleep 6
    jmp bb3
  bb2 (high):
    radio_tx r1
    jmp bb3
  bb3 (exit):
    ret
}
)";

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"entry", "ch0", "ch1", "ch2", "radio", "samples", "ticks",
                  "seed", "dump", "emit-sample"});

    if (args.getBool("emit-sample", false)) {
        std::cout << kSample;
        return 0;
    }
    if (args.positional().empty())
        fatal("usage: ir_tool <file.ir> [--entry proc] [--ch0 spec] ... "
              "(or --emit-sample)");

    auto parsed = ir::parseModuleFile(args.positional()[0]);
    if (!parsed.ok)
        fatal("parse failed: ", parsed.error);

    workloads::Workload workload;
    workload.name = parsed.module.name();
    workload.description = "loaded from " + args.positional()[0];
    workload.module = std::make_shared<ir::Module>(std::move(parsed.module));
    std::string entry_name =
        args.get("entry", workload.module->procedure(0).name());
    workload.entry = workload.module->procedureByName(entry_name).id();

    // Capture the input specs by value; each pipeline stage re-creates
    // the streams from its own seed.
    struct Spec
    {
        int channel; // -1 = radio
        std::string text;
    };
    std::vector<Spec> specs;
    for (int ch = 0; ch <= 2; ++ch) {
        std::string key = "ch" + std::to_string(ch);
        if (args.has(key))
            specs.push_back({ch, args.get(key, "")});
    }
    if (args.has("radio"))
        specs.push_back({-1, args.get("radio", "")});

    workload.makeInputs = [specs](uint64_t seed) {
        auto inputs = std::make_unique<sim::ScriptedInputs>(seed);
        for (const auto &spec : specs) {
            if (spec.channel < 0)
                inputs->setRadio(workloads::parseInputSpecOrDie(spec.text));
            else
                inputs->setChannel(spec.channel,
                                   workloads::parseInputSpecOrDie(spec.text));
        }
        return inputs;
    };
    workload.inputNotes = "command-line specs";

    if (args.getBool("dump", false))
        std::cout << ir::dumpModule(*workload.module);

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.sim.cyclesPerTick = uint64_t(args.getLong("ticks", 4));
    config.seed = uint64_t(args.getLong("seed", 1));

    api::TomographyPipeline pipeline(workload, config);
    auto result = pipeline.run();

    TablePrinter theta("branch probabilities (true vs estimated)");
    theta.setHeader({"branch", "true", "estimated"});
    for (size_t i = 0; i < result.trueTheta.size(); ++i)
        theta.row("b" + std::to_string(i), result.trueTheta[i],
                  result.estimatedTheta[i]);
    theta.print(std::cout);

    TablePrinter outcomes("placement outcomes");
    outcomes.setHeader({"layout", "mispredict rate", "cycles"});
    for (const auto &out : result.outcomes)
        outcomes.row(out.name, out.mispredictRate, out.totalCycles);
    outcomes.print(std::cout);

    std::cout << "\ntomography saves "
              << formatDouble(result.cyclesImprovementPct(), 2)
              << "% cycles vs natural (oracle "
              << formatDouble(result.perfectImprovementPct(), 2) << "%)\n";
    return 0;
}
