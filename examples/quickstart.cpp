/**
 * @file
 * Quickstart: run the complete Code Tomography pipeline on one workload
 * and print what happened at each stage.
 *
 *   ./quickstart [--workload crc16] [--samples 2000] [--estimator em]
 *                [--ticks 8] [--seed 1]
 */

#include <iostream>

#include "api/pipeline.hh"
#include "api/report.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;

namespace {

tomography::EstimatorKind
parseEstimator(const std::string &name)
{
    if (name == "linear")
        return tomography::EstimatorKind::Linear;
    if (name == "em")
        return tomography::EstimatorKind::Em;
    if (name == "moment")
        return tomography::EstimatorKind::Moment;
    fatal("unknown estimator '", name, "' (linear|em|moment)");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "samples", "estimator", "ticks", "seed"});

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.estimator = parseEstimator(args.get("estimator", "em"));
    config.sim.cyclesPerTick = uint64_t(args.getLong("ticks", 8));
    config.seed = uint64_t(args.getLong("seed", 1));

    auto workload = workloads::workloadByName(
        args.get("workload", "crc16"));

    api::TomographyPipeline pipeline(workload, config);
    auto result = pipeline.run();
    std::cout << api::renderReport(workload, config, result);
    return 0;
}
