/**
 * @file
 * Closed-loop continuous PGO demo (src/pgo, docs/PGO.md): run a
 * workload through a regime schedule — the environment's input
 * distribution shifts mid-deployment — and watch the controller
 * detect the drift, checkpoint + compact the durable store, and
 * hot-swap a causally-gated re-placement into the live lane.
 *
 * Output: the per-window drift / mispredict / regret table, one line
 * per re-placement with before/after rates, and the cumulative
 * stale-layout regret against the every-window oracle. With
 * --expect-reoptimize N the demo exits nonzero unless the loop
 * re-placed at least N times and every swap both cut the live
 * mispredict rate and the per-window regret — the CI smoke
 * assertion.
 *
 *   continuous_pgo --workload alarm_threshold --windows 4 \
 *       --offset 150 --jobs 8 --expect-reoptimize 2 --log-out log.txt
 */

#include <fstream>
#include <iomanip>
#include <iostream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pgo/pgo.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "workloads/workload.hh"

using namespace ct;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "seed", "jobs", "measure", "invocations",
                  "windows", "offset", "forgetting", "trigger", "clear",
                  "gate-fraction", "store", "log-out",
                  "expect-reoptimize"});
    auto workload =
        workloads::workloadByName(args.get("workload", "alarm_threshold"));

    // Same telemetry convention as the pipeline binaries: the env
    // vars switch the process-wide registries on, files written at
    // exit (the pgo.* family; see docs/OBSERVABILITY.md).
    const std::string trace_path = obs::traceOutPathFromEnv();
    const std::string metrics_path = obs::metricsOutPathFromEnv();
    if (!trace_path.empty())
        obs::tracer().setEnabled(true);
    if (!metrics_path.empty())
        obs::setMetricsEnabled(true);

    pgo::PgoConfig config;
    config.seed = uint64_t(args.getLong("seed", 7));
    config.jobs = size_t(args.getLong("jobs", 0));
    config.measureInvocations = size_t(args.getLong("measure", 800));
    config.windowInvocations = size_t(args.getLong("invocations", 200));
    config.forgetting = args.getDouble("forgetting", 0.02);
    config.drift.trigger = args.getDouble("trigger", 0.20);
    config.drift.clear = args.getDouble("clear", 0.12);
    config.drift.hysteresisWindows = 2;
    config.drift.cooldownWindows = 1;
    config.gateFraction = args.getDouble("gate-fraction", 0.01);
    config.storeDir = args.get("store", "");

    // Three regimes, two shifts: the sensed channel's operating point
    // drops by offset, then swings to +offset. For the default alarm
    // workload (channel 0 ~ N(500, 70), thresholds 560/440) each
    // shift flips the alarm branch's dominant direction — exactly the
    // mid-deployment change a frozen layout cannot survive.
    const size_t windows = size_t(args.getLong("windows", 4));
    const double offset = args.getDouble("offset", 150.0);
    config.regimes = {
        pgo::Regime{.windows = windows},
        pgo::Regime{.windows = windows, .senseOffset = -offset},
        pgo::Regime{.windows = windows, .senseOffset = offset},
    };

    std::cout << "workload: " << workload.name << " — "
              << workload.description << "\n"
              << "schedule: 3 regimes x " << windows
              << " windows (sense offset 0 / -" << offset << " / +"
              << offset << "), " << config.windowInvocations
              << " invocations per window, forgetting "
              << config.forgetting << "\n\n";

    pgo::ContinuousPgo loop(workload, config);
    auto result = loop.run();

    TablePrinter table("per-window telemetry");
    table.setHeader({"w", "regime", "drift", "mispredict", "live cyc",
                     "oracle cyc", "regret", "cum regret", "event"});
    for (const auto &w : result.windowReports) {
        const char *event = w.swapped    ? "SWAP"
                            : w.triggered ? "trigger"
                                          : "";
        table.row(w.window, w.regime, w.driftStat, w.mispredictRate,
                  w.liveCycles, w.oracleCycles, w.regretCycles,
                  w.cumulativeRegretCycles, event);
    }
    table.print(std::cout);

    std::cout << "\nre-placements: " << result.swaps << " (triggers "
              << result.triggers << ", drift compactions "
              << result.compactions << ")\n";
    bool every_swap_improved = true;
    for (const auto &swap : result.swapEvents) {
        const bool better =
            swap.postMispredictRate < swap.preMispredictRate &&
            swap.postRegretCycles < swap.preRegretCycles;
        every_swap_improved = every_swap_improved && better;
        std::cout << "  w" << swap.window << " (regime " << swap.regime
                  << "): mispredict " << std::fixed
                  << std::setprecision(4) << swap.preMispredictRate
                  << " -> " << swap.postMispredictRate << ", regret "
                  << swap.preRegretCycles << " -> "
                  << swap.postRegretCycles << " cycles, "
                  << swap.gateSurvivors << " gated procs"
                  << (better ? "" : "  [no improvement]") << "\n";
    }
    std::cout << "cumulative stale-layout regret: "
              << result.cumulativeRegretCycles
              << " cycles vs the every-window oracle\n"
              << "layout digest: " << std::hex
              << result.initialLayoutDigest << " -> "
              << result.finalLayoutDigest << std::dec << "\n";

    if (args.has("log-out")) {
        std::ofstream out(args.get("log-out", ""));
        out << result.decisionLog;
        std::cout << "wrote decision log to "
                  << args.get("log-out", "") << "\n";
    }

    if (!trace_path.empty()) {
        obs::tracer().writeJson(trace_path);
        std::cout << "wrote span trace " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
        obs::metrics().writeJson(metrics_path);
        std::cout << "wrote metrics " << metrics_path << "\n";
    }

    // CI smoke contract: the schedule's shifts must be caught and the
    // swaps must pay for themselves.
    const long expect = args.getLong("expect-reoptimize", 0);
    if (expect > 0) {
        if (result.swaps < size_t(expect)) {
            std::cerr << "FAIL: expected at least " << expect
                      << " re-placements, got " << result.swaps << "\n";
            return 1;
        }
        if (!every_swap_improved) {
            std::cerr << "FAIL: a re-placement did not improve both the "
                         "mispredict rate and the window regret\n";
            return 1;
        }
    }
    return 0;
}
