/**
 * @file
 * What-if causal profiling demo: run the measurement + estimation
 * stages on one workload, then ask the ct::causal engine the question
 * a flat profile cannot answer — "which procedure's placement, if made
 * perfect, buys the most end-to-end cycles and energy?" — and print
 * the ranked answer next to the flat profile it disagrees with.
 *
 *   ./causal_profile [--workload crc16] [--samples 2000] [--seed 1]
 *                    [--dials 0.25,0.5,0.75,1.0] [--per-block]
 *                    [--true-profile] [--json out.json] [--csv out.csv]
 *
 * --true-profile parameterizes the chain with the run's own empirical
 * branch frequencies instead of the estimator's thetas (the setting
 * under which the analytic deltas match re-simulation exactly; see
 * docs/CAUSAL.md).
 */

#include <iostream>
#include <sstream>

#include "api/pipeline.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace ct;

namespace {

std::vector<double>
parseDials(const std::string &spec)
{
    std::vector<double> dials;
    std::stringstream ss(spec);
    for (std::string item; std::getline(ss, item, ',');) {
        if (item.empty())
            continue;
        double dial = std::stod(item);
        if (dial < 0.0 || dial > 1.0)
            fatal("--dials entries must lie in [0, 1], got ", item);
        dials.push_back(dial);
    }
    if (dials.empty())
        fatal("--dials parsed to an empty sweep: '", spec, "'");
    return dials;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "samples", "seed", "dials", "per-block",
                  "true-profile", "json", "csv"});

    api::PipelineConfig config;
    config.measureInvocations = size_t(args.getLong("samples", 2000));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.causalProfile.enabled = true;
    config.causalProfile.dials =
        parseDials(args.get("dials", "0.25,0.5,0.75,1.0"));
    config.causalProfile.perBlock = args.getBool("per-block", false);
    config.causalProfile.useTrueProfile =
        args.getBool("true-profile", false);
    config.causalProfile.jsonOut = args.get("json", "");
    config.causalProfile.csvOut = args.get("csv", "");

    auto workload =
        workloads::workloadByName(args.get("workload", "crc16"));

    api::TomographyPipeline pipeline(workload, config);
    auto result = pipeline.run();
    const auto &cp = result.causal;

    std::cout << "=== causal what-if profile: " << workload.name
              << " ===\n"
              << "theta source: "
              << (config.causalProfile.useTrueProfile
                      ? "empirical run profile"
                      : "estimated from boundary timing")
              << "\n"
              << "baseline " << formatDouble(cp.baselineCyclesPerEvent, 2)
              << " cycles/event, "
              << formatDouble(cp.baselineEnergyMicrojoulesPerEvent, 4)
              << " uJ/event; placement penalties account for "
              << formatDouble(cp.totalPenaltyCyclesPerEvent, 2)
              << " cycles/event\n\n";

    {
        TablePrinter table("what-if ranking (dial 1.0 = perfect placement)");
        table.setHeader({"procedure", "causal rank", "flat rank",
                         "delta cyc/event", "speedup %", "delta uJ/event",
                         "call rate", "flat share %"});
        for (const auto &p : cp.procs) {
            table.row(p.name, p.causalRank, p.flatRank,
                      p.deltaCyclesPerEvent, p.virtualSpeedupPct,
                      p.deltaEnergyMicrojoulesPerEvent, p.callRate,
                      p.flatSharePct);
        }
        table.print(std::cout);
    }

    if (!cp.procs.empty()) {
        const auto &top = cp.procs.front();
        TablePrinter table("virtual-speedup curve: " + top.name);
        table.setHeader({"dial", "cycles/event", "speedup %"});
        for (const auto &point : top.curve)
            table.row(point.dial, point.cyclesPerEvent,
                      point.virtualSpeedupPct);
        table.print(std::cout);
    }

    if (config.causalProfile.perBlock && !cp.blocks.empty()) {
        TablePrinter table("per-block attribution");
        table.setHeader({"procedure", "block", "delta cyc/event",
                         "speedup %"});
        for (const auto &b : cp.blocks)
            table.row(b.procName, b.block, b.deltaCyclesPerEvent,
                      b.virtualSpeedupPct);
        table.print(std::cout);
    }

    std::cout << cp.rankDisagreements << " of " << cp.procs.size()
              << " procedures rank differently than in the flat profile"
              << (cp.rankDisagreements
                      ? " - a flat profile would mis-prioritize them.\n"
                      : ".\n");
    return 0;
}
