/**
 * @file
 * Telemetry collection demo: eight simulated motes measure the same
 * workload and ship their boundary-timing traces to one sink over a
 * lossy radio link (drops, duplicates, reordering, bit flips). The
 * sink estimates branch probabilities online as records arrive.
 *
 * Output: a live convergence view for one mote — the sink's estimate
 * of the entry procedure's first branch at 25/50/75/100% of delivered
 * records, against that mote's ground truth — then a per-mote fleet
 * summary showing that every mote's stream survives the faults.
 */

#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "net/fleet.hh"
#include "sim/machine.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "workloads/workload.hh"

using namespace ct;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"workload", "samples", "seed", "loss"});
    auto workload =
        workloads::workloadByName(args.get("workload", "event_dispatch"));
    size_t samples = size_t(args.getLong("samples", 1000));
    uint64_t seed = uint64_t(args.getLong("seed", 7));
    double loss = args.getDouble("loss", 0.15);

    net::ChannelConfig faults;
    faults.dropRate = loss;
    faults.duplicateRate = 0.05;
    faults.reorderWindow = 4;
    faults.bitFlipRate = 0.02;

    std::cout << "workload: " << workload.name << " — "
              << workload.description << "\n"
              << "link: " << 100.0 * loss << "% loss, 5% duplicates, "
              << "reorder window 4, 2% bit flips (CRC-caught)\n\n";

    // --- One mote in close-up: watch the sink's estimate converge. ---
    sim::SimConfig sim_config;
    sim_config.timingProbes = true;
    auto inputs = workload.makeInputs(seed);
    auto lowered = sim::lowerModule(*workload.module);
    sim::Simulator simulator(*workload.module, lowered, sim_config, *inputs,
                             seed ^ 0x01);
    auto run = simulator.run(workload.entry, samples);
    auto truth =
        run.profile[workload.entry].branchProbabilities(workload.entryProc());

    net::EstimatorBank bank(*workload.module, lowered, sim_config.costs,
                            sim_config.policy, sim_config.cyclesPerTick, {},
                            2.0 * double(sim_config.costs.timerRead));
    net::SinkCollector sink;
    // Wrap the bank's sink to snapshot theta at each quarter of the
    // mote's record stream as it arrives at the sink.
    const uint16_t mote = 1;
    size_t seen = 0;
    std::vector<std::pair<size_t, std::vector<double>>> snapshots;
    size_t next_mark = (run.trace.size() + 3) / 4;
    auto inner = bank.sink();
    sink.setRecordSink([&](uint16_t id, const trace::TimingRecord &record) {
        inner(id, record);
        ++seen;
        if (seen >= next_mark) {
            snapshots.emplace_back(seen, bank.theta(mote, workload.entry));
            next_mark += (run.trace.size() + 3) / 4;
        }
    });
    auto transfer = net::transferTrace(run.trace, mote, net::kDefaultMtu,
                                       faults, {}, sink, seed ^ 0x02);
    if (snapshots.empty() || snapshots.back().first != seen)
        snapshots.emplace_back(seen, bank.theta(mote, workload.entry));

    std::cout << "mote 1 close-up: " << run.trace.size()
              << " records measured, " << sink.recordsDelivered(mote)
              << " delivered across " << transfer.packets << " packets in "
              << transfer.rounds << " rounds ("
              << transfer.uplink.retransmissions << " retransmissions, "
              << transfer.channel.dropped << " frames dropped, "
              << sink.stats().rejected << " CRC rejects)\n\n";

    TablePrinter convergence("sink estimate vs truth (entry procedure)");
    std::vector<std::string> header = {"records at sink"};
    for (size_t b = 0; b < truth.size(); ++b)
        header.push_back("branch " + std::to_string(b));
    convergence.setHeader(header);
    for (const auto &[count, theta] : snapshots) {
        std::vector<std::string> cells = {std::to_string(count)};
        for (size_t b = 0; b < truth.size(); ++b) {
            std::ostringstream cell;
            cell << std::fixed << std::setprecision(3)
                 << (b < theta.size() ? theta[b] : 0.5);
            cells.push_back(cell.str());
        }
        convergence.addRow(cells);
    }
    {
        std::vector<std::string> cells = {"truth"};
        for (double p : truth) {
            std::ostringstream cell;
            cell << std::fixed << std::setprecision(3) << p;
            cells.push_back(cell.str());
        }
        convergence.addRow(cells);
    }
    convergence.print(std::cout);
    std::cout << "\n";

    // --- The whole fleet: eight motes, one sink per-mote summary. ---
    net::FleetConfig fleet_config;
    fleet_config.motes = 8;
    fleet_config.invocations = samples;
    fleet_config.seed = seed;
    fleet_config.channel = faults;
    auto fleet = net::runFleet(workload, fleet_config);

    TablePrinter table("fleet: 8 motes over the lossy link");
    table.setHeader({"mote", "sent", "delivered", "packets", "complete",
                     "rounds", "retrans", "max |est-true|"});
    for (const auto &m : fleet.motes) {
        table.row(m.mote, m.recordsSent, m.recordsDelivered, m.packets,
                  m.complete ? "yes" : "no", m.rounds,
                  m.uplink.retransmissions, m.maxThetaError);
    }
    table.print(std::cout);
    std::cout << "\nfleet: " << fleet.totalRecordsDelivered() << "/"
              << fleet.totalRecordsSent() << " records delivered, "
              << fleet.completeMotes() << "/8 motes complete, worst "
              << "estimate error " << fleet.maxThetaError() << "\n";
    return 0;
}
