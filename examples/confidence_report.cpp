/**
 * @file
 * Confidence report: how much should you trust a tomography profile?
 *
 * For one workload this prints, per branch: the true probability (we
 * are in simulation, so we can), the point estimate, a bootstrap
 * confidence interval, and the two identifiability diagnostics (arm
 * separation in ticks, visit rate). The punchline is that the purely
 * data-driven interval width and the purely model-driven separation
 * metric flag the same branches.
 */

#include <cmath>
#include <iostream>

#include "sim/machine.hh"
#include "tomography/bootstrap.hh"
#include "tomography/timing_model.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/str.hh"
#include "workloads/workload.hh"

using namespace ct;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "samples", "ticks", "resamples", "seed"});
    auto workload =
        workloads::workloadByName(args.get("workload", "median_filter"));
    size_t samples = size_t(args.getLong("samples", 2000));
    uint64_t ticks = uint64_t(args.getLong("ticks", 4));
    uint64_t seed = uint64_t(args.getLong("seed", 2));

    tomography::BootstrapOptions boot;
    boot.resamples = size_t(args.getLong("resamples", 200));
    boot.seed = seed * 31;

    std::cout << "workload: " << workload.name << " — "
              << workload.description << "\n"
              << samples << " timed events, " << ticks
              << " cycles/tick, " << boot.resamples
              << " bootstrap resamples\n\n";

    // Measure.
    sim::SimConfig config;
    config.cyclesPerTick = ticks;
    auto inputs = workload.makeInputs(seed);
    sim::Simulator simulator(*workload.module,
                             sim::lowerModule(*workload.module), config,
                             *inputs, seed ^ 0xc0);
    auto run = simulator.run(workload.entry, samples);

    // Model + intervals for the entry procedure.
    auto lowered = sim::lowerModule(*workload.module);
    auto means = tomography::meanCyclesBottomUp(
        *workload.module, lowered, config.costs, config.policy, ticks,
        run.profile, 2.0 * config.costs.timerRead);
    tomography::TimingModel model(
        workload.entryProc(), lowered.procs[workload.entry], config.costs,
        config.policy, ticks, means, 2.0 * config.costs.timerRead);

    auto estimator =
        tomography::makeEstimator(tomography::EstimatorKind::Linear, {});
    auto durations = run.trace.durations(workload.entry);
    auto intervals =
        tomography::bootstrapIntervals(model, durations, *estimator, boot);

    auto truth = run.profile[workload.entry].branchProbabilities(
        workload.entryProc());
    auto diags = model.branchDiagnostics(truth);

    TablePrinter table("per-branch confidence report (" + workload.name +
                       ")");
    table.setHeader({"branch", "true", "estimate", "90% interval", "width",
                     "sep (ticks)", "visits/inv", "verdict"});
    for (size_t b = 0; b < intervals.size(); ++b) {
        const auto &iv = intervals[b];
        std::string interval = "[" + formatDouble(iv.lo, 3) + ", " +
                               formatDouble(iv.hi, 3) + "]";
        const char *verdict =
            diags[b].separationTicks < 1.0 ? "timing-blind"
            : iv.width() > 0.2             ? "uncertain"
                                           : "trustworthy";
        table.row("b" + std::to_string(b), truth[b], iv.point, interval,
                  iv.width(), diags[b].separationTicks, diags[b].visitRate,
                  verdict);
    }
    table.print(std::cout);

    std::cout <<
        "\nReading guide: 'sep' is model-derived (can be computed on any\n"
        "binary before deployment); the interval is data-derived. When\n"
        "sep is below ~1 tick the interval should be wide and the point\n"
        "estimate should not be trusted — and the optimizer treats such\n"
        "branches as 50/50, leaving their layout unchanged.\n";
    return 0;
}
