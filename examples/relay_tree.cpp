/**
 * @file
 * Hierarchical aggregation demo: a mote -> sink -> region -> root tree
 * (ct::relay) where every leaf sink ingests its own slice of the
 * fleet's motes and each tier ships its estimator bank upward as a
 * fragmented, CRC-framed, retransmitted snapshot over a lossy link.
 *
 * Output: a per-link table (fragments, retransmissions, attempts,
 * wire bytes, merge latency) plus the campaign verdict — the root
 * digest against the flat single-sink digest. Those two numbers being
 * equal is the subsystem's load-bearing invariant: aggregation
 * through any tree shape, at any per-link loss rate the retry budget
 * survives, loses nothing and distorts nothing (docs/RELAY.md).
 *
 *   relay_tree --fanout 4 --depth 2 --motes 256 --loss 0.2
 */

#include <iomanip>
#include <iostream>

#include "relay/tree.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "workloads/workload.hh"

using namespace ct;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"workload", "fanout", "depth", "motes", "records",
                  "jobs", "seed", "loss", "dup", "reorder", "mtu",
                  "snapshot"});
    auto workload =
        workloads::workloadByName(args.get("workload", "event_dispatch"));

    relay::RelayTreeConfig config;
    config.tree =
        relay::TreeTopology::balanced(size_t(args.getLong("fanout", 4)),
                                      size_t(args.getLong("depth", 2)));
    config.motes = size_t(args.getLong("motes", 256));
    config.invocations = size_t(args.getLong("records", 8));
    config.jobs = size_t(args.getLong("jobs", 0));
    config.seed = uint64_t(args.getLong("seed", 1));
    config.ship.mtu = size_t(args.getLong("mtu", relay::kDefaultRelayMtu));
    config.ship.channel.dropRate = args.getDouble("loss", 0.1);
    config.ship.channel.duplicateRate = args.getDouble("dup", 0.0);
    config.ship.channel.reorderWindow =
        size_t(args.getLong("reorder", 0));

    std::cout << "workload: " << workload.name << " — "
              << workload.description << "\n"
              << "tree: fanout " << args.getLong("fanout", 4) << ", depth "
              << config.tree.depth() << " (" << config.tree.nodes()
              << " nodes, " << config.tree.leaves().size() << " sinks), "
              << config.motes << " motes x " << config.invocations
              << " records, loss " << config.ship.channel.dropRate
              << "\n\n";

    auto result = relay::runRelayTree(workload, config);

    TablePrinter table("per-link shipping (child -> parent)");
    table.setHeader({"link", "slots", "frags", "sent", "retx", "attempts",
                     "wire B", "merge us"});
    for (const auto &link : result.links) {
        table.row(std::to_string(link.child) + "->" +
                      std::to_string(link.parent),
                  link.slots, link.ship.fragments,
                  link.ship.uplink.transmissions,
                  link.ship.uplink.retransmissions, link.ship.attempts,
                  link.ship.wireBytes, link.mergeUs);
    }
    table.print(std::cout);

    std::cout << "\ncampaign: " << result.records << " records across "
              << result.leafCount << " sinks in " << std::fixed
              << std::setprecision(3) << result.ingestSeconds
              << " s; aggregation " << result.aggregateSeconds << " s, "
              << result.totalWireBytes() << " wire bytes ("
              << result.totalImageBytes() << " image bytes, "
              << result.totalRetransmissions() << " retransmissions, "
              << result.failedLinks << " failed links)\n"
              << "root:   " << result.estimators << " estimators, digest "
              << std::hex << std::showbase << result.rootDigest << "\n"
              << "flat:   digest " << result.flatDigest << std::dec
              << std::noshowbase << "\n"
              << "verdict: "
              << (result.digestMatch ? "MATCH — aggregation is lossless"
                                     : "MISMATCH")
              << "\n";

    std::string snapshot_out = args.get("snapshot", "");
    if (!snapshot_out.empty()) {
        relay::writeSnapshotFile(snapshot_out, result.root);
        std::cout << "wrote root snapshot " << snapshot_out
                  << " (inspect: store_tool snapshot " << snapshot_out
                  << ")\n";
    }
    return result.digestMatch && result.failedLinks == 0 ? 0 : 1;
}
