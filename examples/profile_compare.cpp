/**
 * @file
 * Profiling-route comparison: collect the same profile three ways —
 * naive edge instrumentation, spanning-tree instrumentation, and Code
 * Tomography — and print what each costs and how close each gets to
 * the ground truth. This is the paper's core overhead-vs-accuracy
 * trade-off on one workload.
 */

#include <iostream>

#include "profiler/instrument.hh"
#include "profiler/plan.hh"
#include "profiler/reconstruct.hh"
#include "sim/machine.hh"
#include "stats/metrics.hh"
#include "tomography/estimator.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/str.hh"
#include "workloads/workload.hh"

using namespace ct;

namespace {

sim::RunResult
runModule(const ir::Module &module, const workloads::Workload &workload,
          bool probes, size_t samples, uint64_t seed)
{
    sim::SimConfig config;
    config.timingProbes = probes;
    config.cyclesPerTick = 4;
    config.maxGapCycles = 0;
    auto inputs = workload.makeInputs(seed);
    sim::Simulator simulator(module, sim::lowerModule(module), config,
                             *inputs, seed ^ 0x99);
    return simulator.run(workload.entry, samples);
}

double
profileMae(const workloads::Workload &workload,
           const ir::ModuleProfile &truth, const ir::ModuleProfile &got)
{
    std::vector<double> t, g;
    for (ir::ProcId id = 0; id < workload.module->procedureCount(); ++id) {
        const auto &proc = workload.module->procedure(id);
        if (proc.branchBlocks().empty())
            continue;
        auto tb = truth[id].branchProbabilities(proc);
        auto gb = got[id].branchProbabilities(proc);
        t.insert(t.end(), tb.begin(), tb.end());
        g.insert(g.end(), gb.begin(), gb.end());
    }
    return t.empty() ? 0.0 : meanAbsoluteError(g, t);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"workload", "samples", "seed"});
    auto workload =
        workloads::workloadByName(args.get("workload", "surge_route"));
    size_t samples = size_t(args.getLong("samples", 2000));
    uint64_t seed = uint64_t(args.getLong("seed", 3));

    std::cout << "workload: " << workload.name << " — "
              << workload.description << "\n\n";

    // Ground truth: clean run, no measurement apparatus at all.
    auto clean = runModule(*workload.module, workload, false, samples, seed);
    double base_cycles = double(clean.totalCycles);

    TablePrinter table("profiling routes compared (" + workload.name + ", " +
                       std::to_string(samples) + " events)");
    table.setHeader({"route", "overhead %", "RAM bytes", "extra code",
                     "branch-prob MAE"});

    // Route 1 & 2: instrumentation.
    for (auto mode : {profiler::ProfilerMode::AllEdges,
                      profiler::ProfilerMode::SpanningTree}) {
        auto plan = profiler::planModule(*workload.module, mode, 512);
        auto program = profiler::instrumentModule(*workload.module, plan);
        auto run = runModule(program.module, workload, false, samples, seed);

        std::vector<double> invocations;
        for (uint64_t n : run.invocations)
            invocations.push_back(double(n));
        auto rebuilt = profiler::reconstructModuleProfile(
            *workload.module, plan, run.finalRam, invocations);

        auto lowered_base = sim::lowerModule(*workload.module);
        auto lowered_inst = sim::lowerModule(program.module);
        size_t extra_code = 0;
        for (ir::ProcId id = 0; id < workload.module->procedureCount();
             ++id) {
            extra_code +=
                lowered_inst.procs[id].codeSlots(program.module.procedure(id)) -
                lowered_base.procs[id].codeSlots(
                    workload.module->procedure(id));
        }

        table.row(profiler::profilerModeName(mode),
                  100.0 * (double(run.totalCycles) - base_cycles) /
                      base_cycles,
                  plan.counterBytes(), extra_code,
                  profileMae(workload, clean.profile, rebuilt));
    }

    // Route 3: Code Tomography (timestamps only).
    {
        auto run = runModule(*workload.module, workload, true, samples, seed);
        sim::SimConfig config;
        config.cyclesPerTick = 4;
        auto lowered = sim::lowerModule(*workload.module);
        auto estimator =
            tomography::makeEstimator(tomography::EstimatorKind::Em, {});
        auto estimate = tomography::estimateModule(
            *workload.module, lowered, config.costs, config.policy, 4,
            2.0 * config.costs.timerRead, run.trace, *estimator);

        // A small staging buffer for timestamp records; no counters.
        constexpr size_t tomo_ram = 16;
        table.row("code tomography",
                  100.0 * (double(run.totalCycles) - base_cycles) /
                      base_cycles,
                  tomo_ram, size_t(0),
                  profileMae(workload, clean.profile, estimate.profile));
    }

    table.print(std::cout);
    std::cout << "\nInstrumentation is exact but pays per-edge cycles, RAM\n"
                 "and flash; tomography trades a little accuracy for two\n"
                 "timer reads per invocation and O(1) RAM.\n";
    return 0;
}
